"""Piecewise-stationary campaign fast-forward.

Between fault/repair/failover transitions a campaign's platform is
statistically stationary: the fault state, the live replica topology
and the (tiny, open-loop) offered load are all constant, so every
client operation inside such a window has the same outcome
distribution.  Event-level replay spends millions of kernel events
re-deriving that constant; this driver instead *solves* each window —
per-(service, op) latency from the cohort fixed-point solver
(:mod:`repro.workloads.cohort`), outcomes from a deterministic
classification of the replica topology — and emits the results as
batched observations, dropping to event-level simulation only inside a
**guard band** around each transition.

Two phases, both through :func:`~repro.resilience.campaign.\
build_campaign_world` (the exact world the event-level driver builds):

1. **Timeline realization** — the same world with *no client ops*, run
   to the horizon.  Domain faults draw repairs from the dedicated
   ``domain-faults`` stream and the failover monitor's probes read only
   injector health, so the realized fault log and the account's
   ``state_log`` are *exactly* the event-level timeline (client ops
   never touch either).
2. **Guard-band replay + analytic fold** — a fresh identical world in
   which only ops issued within ``guard_band_s`` of a transition are
   really simulated (real client stack, real retries, real
   replication-lag ledger — so ``lost_writes`` and the geo counters are
   exact).  Every other op is folded analytically:

   * **outcome** from ``classify``: mode, geo state and per-replica
     reachability decide direct success / cross-replica failover
     success / failure.  All inputs are deterministic, so analytic
     availability — and with it the per-minute bad/dark counts and the
     availability SLO burn — reproduces event-level replay exactly
     (failing ops resolve well inside the guard radius, so no analytic
     op's outcome straddles a transition);
   * **latency** from the stationary cohort solve, drawn through the
     cohort driver's own stage sampler; failing passes add full-jitter
     backoff ladder sums drawn per granted retry;
   * **retries/sheds** from a chronological token-bucket ledger that
     mirrors the client retry budget over *all* ops (guard ops
     participate as virtual entries so the token trajectory tracks the
     event-level world's).

Known approximations (latency/retry tails only; availability, minute
counts and the availability burn are unaffected): hedge backup legs are
ignored (a blacked-out attempt fails orders of magnitude sooner than
the hedge delay, and healthy hedging only shaves the last percentile);
the phase-2 retry budget starts from the configured initial tokens
rather than the event path's mid-campaign level; analytic backoff draws
come from a dedicated RNG stream rather than the policy stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple, cast

import numpy as np

from repro.faults import domain_down_intervals, fault_transition_times
from repro.resilience.campaign import (
    CampaignSpec,
    CampaignWorld,
    ModeResult,
    _campaign_policy,
    build_campaign_world,
    collect_mode_result,
)
from repro.service.tracing import RequestTracer
from repro.storage.account import GEO_FAILING_OVER, GEO_PRIMARY, GEO_SECONDARY
from repro.workloads.cohort import (
    draw_stationary_latencies,
    solve_stationary,
    stationary_op_model,
)

#: The domain the primary's health (and the clients' view of it) hangs
#: off, and the domains whose loss severs the secondary from the
#: clients' region — must match ``build_campaign_world``'s
#: ``register_account`` wiring.
_PRIMARY_DOMAIN = "rack-a1"
_SECONDARY_DOMAINS = ("rack-b1", "wan")

_STATE_CODES = {GEO_PRIMARY: 0, GEO_FAILING_OVER: 1, GEO_SECONDARY: 2}

#: Deterministic outcome classes for one client op.
CAT_OK_READ = 0            # direct read success on the routed replica
CAT_OK_WRITE = 1           # direct write success on the active replica
CAT_OK_FAILOVER_READ = 2   # first pass down, cross-replica pass succeeds
CAT_FAIL_READ = 3          # both replicas unreachable
CAT_FAIL_WRITE = 4         # active replica unreachable (server-reaching)
CAT_FAIL_READONLY = 5      # write during a promotion (guard-rejected)
CAT_FAIL_NONE = 6          # single-replica mode, primary unreachable

_OK_CATS = (CAT_OK_READ, CAT_OK_WRITE, CAT_OK_FAILOVER_READ)


def default_guard_band_s(spec: CampaignSpec) -> float:
    """The default event-level radius around each transition.

    ``>= lag_s`` makes the replication-lag ledger exact (every write
    that could be at risk at a promotion is really simulated);
    ``>= ~60 s`` covers the longest failing-op ladder (two full-jitter
    ladders cap at ~52 s), so no analytic op's outcome can straddle a
    transition; the client timeout pads in-flight ops at the edges.
    """
    return max(spec.replication_lag_s, 60.0) + spec.client_timeout_s


@dataclass
class TransitionTimeline:
    """The realized (phase-1) piecewise-stationary window structure."""

    #: Merged ``[start, end)`` unreachability of each replica, as the
    #: *clients* see it (domain + ancestors; the secondary includes the
    #: WAN).
    primary_down: List[Tuple[float, float]]
    secondary_down: List[Tuple[float, float]]
    #: Failover state machine trajectory ``(t, state)``.
    state_log: List[Tuple[float, str]]
    #: Every boundary between stationary windows, sorted.
    transitions: List[float]


def _with_ancestors(root: Any, names: Sequence[str]) -> set:
    out = set()
    for name in names:
        domain = root.find(name)
        out.add(domain.name)
        out.update(a.name for a in domain.ancestors())
    return out


def realize_timeline(spec: CampaignSpec, mode: str) -> TransitionTimeline:
    """Phase 1: run the ops-free world and read off the exact timeline."""
    world = build_campaign_world(spec, mode)
    horizon = spec.duration_s + spec.grace_s
    world.env.run(until=horizon)
    log = world.injector.log
    primary_down = domain_down_intervals(
        log, _with_ancestors(world.root, [_PRIMARY_DOMAIN]), horizon
    )
    secondary_down = domain_down_intervals(
        log, _with_ancestors(world.root, _SECONDARY_DOMAINS), horizon
    )
    state_log = (
        list(world.geo.state_log)
        if world.geo is not None
        else [(0.0, GEO_PRIMARY)]
    )
    transitions = sorted(
        set(fault_transition_times(log))
        | {t for t, _state in state_log[1:]}
    )
    return TransitionTimeline(
        primary_down=primary_down,
        secondary_down=secondary_down,
        state_log=state_log,
        transitions=transitions,
    )


def merge_guard_bands(
    transitions: List[float], guard_s: float
) -> List[Tuple[float, float]]:
    """``[t - g, t + g]`` around each transition, merged where they
    overlap."""
    bands: List[Tuple[float, float]] = []
    for t in sorted(transitions):
        lo, hi = max(0.0, t - guard_s), t + guard_s
        if bands and lo <= bands[-1][1]:
            bands[-1] = (bands[-1][0], max(bands[-1][1], hi))
        else:
            bands.append((lo, hi))
    return bands


def _membership(
    ts: np.ndarray, intervals: List[Tuple[float, float]]
) -> np.ndarray:
    """Boolean mask: which of the sorted ``ts`` fall inside any of the
    sorted, disjoint ``[start, end)`` intervals."""
    out = np.zeros(ts.size, dtype=bool)
    if not intervals:
        return out
    starts = np.array([a for a, _b in intervals])
    ends = np.array([b for _a, b in intervals])
    i = np.searchsorted(starts, ts, side="right") - 1
    valid = i >= 0
    out[valid] = ts[valid] < ends[i[valid]]
    return out


def classify_ops(
    mode: str,
    is_read: np.ndarray,
    p_down: np.ndarray,
    s_down: np.ndarray,
    state: np.ndarray,
) -> np.ndarray:
    """The deterministic outcome class of every op.

    Mirrors the client stack exactly: reads route by
    ``read_replica()`` (primary only while the state machine is in
    ``primary-active``) and get one full cross-replica pass on
    transport failure; writes are guarded onto the active replica
    (none mid-promotion) and their cross-replica pass is always
    guard-rejected, so a write succeeds iff the active replica is
    reachable.
    """
    if mode == "none":
        ok = ~p_down
        return np.where(
            ok,
            np.where(is_read, CAT_OK_READ, CAT_OK_WRITE),
            CAT_FAIL_NONE,
        ).astype(np.int8)
    primary_active = state == _STATE_CODES[GEO_PRIMARY]
    route_down = np.where(primary_active, p_down, s_down)
    other_down = np.where(primary_active, s_down, p_down)
    read_cat = np.where(
        ~route_down,
        CAT_OK_READ,
        np.where(~other_down, CAT_OK_FAILOVER_READ, CAT_FAIL_READ),
    )
    promoting = state == _STATE_CODES[GEO_FAILING_OVER]
    active_down = np.where(primary_active, p_down, s_down)
    write_cat = np.where(
        promoting,
        CAT_FAIL_READONLY,
        np.where(~active_down, CAT_OK_WRITE, CAT_FAIL_WRITE),
    )
    return np.where(is_read, read_cat, write_cat).astype(np.int8)


def _run_budget_ledger(
    cat: np.ndarray, analytic: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Chronological token-bucket mirror of the client retry budget.

    Returns per-op granted retries for the first and second client
    passes, plus how many *analytic* retries were shed.  Guard-band ops
    participate (deposits and spends) so the token trajectory tracks
    the event-level run's, but their realized retries come from the
    real simulation.
    """
    pspec = _campaign_policy()
    tokens = float(pspec.budget_initial)
    cap = float(pspec.budget_max)
    ratio = float(pspec.budget_ratio)
    max_r = int(pspec.max_retries)
    r1 = np.zeros(cat.size, dtype=np.int64)
    r2 = np.zeros(cat.size, dtype=np.int64)
    shed = 0
    cats = cat.tolist()
    ana = analytic.tolist()
    for i, c in enumerate(cats):
        # Every client pass deposits ratio tokens at entry.
        tokens = min(cap, tokens + ratio)
        if c <= CAT_OK_WRITE:
            continue
        # First pass fails: up to max_r granted retries, one shed ends
        # the pass (with_retries raises on the first failed spend).
        g = 0
        while g < max_r:
            if tokens >= 1.0:
                tokens -= 1.0
                g += 1
            else:
                if ana[i]:
                    shed += 1
                break
        r1[i] = g
        if c == CAT_FAIL_NONE:
            continue
        if c == CAT_OK_FAILOVER_READ:
            # Second (cross-replica) pass succeeds first try: deposit
            # only.
            tokens = min(cap, tokens + ratio)
            continue
        # Failing second pass (reads with both replicas down; writes
        # are always guard-rejected cross-replica).
        tokens = min(cap, tokens + ratio)
        g = 0
        while g < max_r:
            if tokens >= 1.0:
                tokens -= 1.0
                g += 1
            else:
                if ana[i]:
                    shed += 1
                break
        r2[i] = g
    return r1, r2, shed


def _backoff_ceilings() -> List[float]:
    pspec = _campaign_policy()
    return [
        min(
            pspec.backoff_cap_s,
            pspec.backoff_base_s * pspec.backoff_factor**j,
        )
        for j in range(int(pspec.max_retries))
    ]


def fast_run_mode(
    spec: CampaignSpec,
    mode: str,
    guard_band_s: Optional[float] = None,
) -> ModeResult:
    """One failover mode × one campaign via piecewise-stationary
    fast-forward; returns the same :class:`ModeResult` shape as the
    event-level driver."""
    guard_s = (
        default_guard_band_s(spec) if guard_band_s is None
        else float(guard_band_s)
    )
    timeline = realize_timeline(spec, mode)
    bands = merge_guard_bands(timeline.transitions, guard_s)

    # Fast mode can afford per-request tracing for the handful of real
    # ops, and the analytic fold feeds the same tracer in batches.
    world = build_campaign_world(spec, mode, tracer=RequestTracer())
    env = world.env
    n, opc = spec.n_clients, spec.ops_per_client
    interval = spec.op_interval_s

    # Exact issue times in chronological order: t = idx*interval/n +
    # k*interval, the identical binary floats the event path's timeout
    # accumulation realizes.
    k_arr = np.repeat(np.arange(opc), n)
    idx_arr = np.tile(np.arange(n), opc)
    ts = idx_arr * interval / n + k_arr * interval
    is_read = world.mix[idx_arr, k_arr]
    minutes = np.minimum(
        (ts // world.avail.window_s).astype(np.int64),
        world.avail.n_minutes - 1,
    )

    p_down = _membership(ts, timeline.primary_down)
    s_down = _membership(ts, timeline.secondary_down)
    state_times = np.array([t for t, _s in timeline.state_log])
    state_codes = np.array(
        [_STATE_CODES[s] for _t, s in timeline.state_log], dtype=np.int8
    )
    state = state_codes[
        np.searchsorted(state_times, ts, side="right") - 1
    ]
    guard = _membership(ts, bands)
    analytic = ~guard

    cat = classify_ops(mode, is_read, p_down, s_down, state)
    r1, r2, analytic_shed = _run_budget_ledger(cat, analytic)

    # Phase 2: really simulate only the guard-band ops, at their exact
    # issue instants, through the real client/failover/fault stack.
    guard_pos = np.flatnonzero(guard)

    def chaser():
        for i in guard_pos.tolist():
            t = float(ts[i])
            if t > env.now:
                yield env.timeout(t - env.now)
            env.process(world.one_op(int(idx_arr[i]), int(k_arr[i])))

    if guard_pos.size:
        env.process(chaser())
    env.run(until=spec.duration_s + spec.grace_s)

    extra = _fold_analytic(
        world, spec, minutes, is_read, cat, r1, r2, analytic
    )
    mode_result = collect_mode_result(world)
    mode_result.result.server_attempts += extra["server_attempts"]
    mode_result.result.shed_retries += analytic_shed
    mode_result.client_failovers += extra["client_failovers"]
    return mode_result


def _fold_analytic(
    world: CampaignWorld,
    spec: CampaignSpec,
    minutes: np.ndarray,
    is_read: np.ndarray,
    cat: np.ndarray,
    r1: np.ndarray,
    r2: np.ndarray,
    analytic: np.ndarray,
) -> dict:
    """Solve the stationary windows and batch-ingest every analytic op
    into the same sinks the event path feeds one op at a time."""
    rng = world.streams.batched("campaign.fast")
    ceilings = _backoff_ceilings()

    def backoff_sums(r: np.ndarray) -> np.ndarray:
        """Full-jitter ladder sums for ``r`` granted retries each."""
        out = np.zeros(r.size, dtype=float)
        for j, ceiling in enumerate(ceilings):
            m = r > j
            hits = int(m.sum())
            if hits:
                out[m] += rng.uniform_batch(0.0, ceiling, hits)
        return out

    # The stationary solve: the campaign's open-loop trickle behaves as
    # n_clients closed-loop members thinking ~one op interval, which
    # lands the solver on the platform's unloaded operating point.
    model_read = stationary_op_model(
        "table", "query", size_kb=spec.entity_kb
    )
    model_write = stationary_op_model(
        "table", "insert", size_kb=spec.entity_kb
    )
    st_read = solve_stationary(
        model_read, spec.n_clients, spec.op_interval_s
    )
    st_write = solve_stationary(
        model_write, spec.n_clients, spec.op_interval_s
    )

    ok_flags = np.isin(cat, _OK_CATS)
    success_lats: List[np.ndarray] = []
    giveup_lats: List[np.ndarray] = []

    def draw_direct(
        mask: np.ndarray, model: Any, st: Any
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Stationary-window latency draws for ``mask``'s ops; draws
        marked failed (timeout tail) are re-flagged as failures."""
        pos = np.flatnonzero(mask)
        lat, failed = draw_stationary_latencies(
            model, st, rng, pos.size, timeout_s=spec.client_timeout_s
        )
        if failed.any():
            ok_flags[pos[failed]] = False
        return lat, failed

    # Direct successes, reads then writes (fixed draw order).
    m_read = analytic & (cat == CAT_OK_READ)
    lat_read, f_read = draw_direct(m_read, model_read, st_read)
    success_lats.append(lat_read[~f_read])
    giveup_lats.append(lat_read[f_read])

    m_write = analytic & (cat == CAT_OK_WRITE)
    lat_write, f_write = draw_direct(m_write, model_write, st_write)
    success_lats.append(lat_write[~f_write])
    giveup_lats.append(lat_write[f_write])

    # Cross-replica failover reads: a full failed first pass (each
    # attempt pays the base-latency stage before the blacked-out
    # partition refuses it, then a jittered backoff) plus one direct
    # read on the surviving replica.
    m_fo = analytic & (cat == CAT_OK_FAILOVER_READ)
    lat_fo, f_fo = draw_direct(m_fo, model_read, st_read)
    lat_fo = lat_fo + backoff_sums(r1[m_fo]) + (
        (r1[m_fo] + 1) * model_read.base_s
    )
    success_lats.append(lat_fo[~f_fo])
    giveup_lats.append(lat_fo[f_fo])
    client_failovers = int((~f_fo).sum())

    # Give-up latencies for deterministic failures: ladder sums over
    # both passes plus the base-stage cost of server-reaching attempts
    # (guard-rejected write passes fail before any service work).
    base_rw = np.where(is_read, model_read.base_s, model_write.base_s)
    for c in (CAT_FAIL_READ, CAT_FAIL_WRITE, CAT_FAIL_READONLY,
              CAT_FAIL_NONE):
        m = analytic & (cat == c)
        if not m.any():
            continue
        lat = backoff_sums(r1[m])
        if c != CAT_FAIL_NONE:
            lat += backoff_sums(r2[m])
        if c == CAT_FAIL_READ:
            lat += (r1[m] + r2[m] + 2) * model_read.base_s
        elif c == CAT_FAIL_WRITE:
            lat += (r1[m] + 1) * model_write.base_s
        elif c == CAT_FAIL_NONE:
            lat += (r1[m] + 1) * base_rw[m]
        giveup_lats.append(lat)

    # -- batched ingestion into the event path's sinks -----------------
    registry, avail = world.registry, world.avail
    ana_ok = ok_flags[analytic]
    avail.observe_batch(minutes[analytic], ana_ok)

    ok_count = int(ana_ok.sum())
    fail_count = int(analytic.sum()) - ok_count
    registry.counter("drill.ok").increment(ok_count)
    registry.counter("drill.failed").increment(fail_count)
    registry.counter("drill.retries").increment(
        int(r1[analytic].sum() + r2[analytic].sum())
    )
    success = np.concatenate(success_lats) if success_lats else (
        np.empty(0)
    )
    if success.size:
        world.latency.observe_batch(success)
    giveup = np.concatenate(giveup_lats) if giveup_lats else np.empty(0)
    if giveup.size:
        registry.tally("drill.give_up_latency").observe_batch(
            cast(Sequence[float], giveup)
        )

    # Per-(service, op) windows for the tracer — the same keys the
    # client stack uses, so request_summary lines up.
    service = world.primary.tables.name
    read_ok = ok_flags & is_read & analytic
    write_ok = ok_flags & ~is_read & analytic
    read_lat = np.concatenate(
        [lat_read[~f_read], lat_fo[~f_fo]]
    )
    world.tracer.observe_batch(
        service, "table.query", cast(Sequence[float], read_lat),
        errors=int((analytic & is_read).sum()) - int(read_ok.sum()),
        client=True,
    )
    world.tracer.observe_batch(
        service, "table.insert",
        cast(Sequence[float], lat_write[~f_write]),
        errors=int((analytic & ~is_read).sum()) - int(write_ok.sum()),
        client=True,
    )

    # Server attempts: every server-reaching attempt increments the
    # partition's ``started`` counter, blacked-out or not;
    # guard-rejected write passes never reach a server.
    attempts = int((analytic & (cat == CAT_OK_READ)).sum())
    attempts += int((analytic & (cat == CAT_OK_WRITE)).sum())
    attempts += int((r1[m_fo] + 2).sum())
    m = analytic & (cat == CAT_FAIL_READ)
    attempts += int((r1[m] + r2[m] + 2).sum())
    m = analytic & (cat == CAT_FAIL_WRITE)
    attempts += int((r1[m] + 1).sum())
    m = analytic & (cat == CAT_FAIL_NONE)
    attempts += int((r1[m] + 1).sum())
    return {
        "server_attempts": attempts,
        "client_failovers": client_failovers,
    }


__all__ = [
    "CAT_FAIL_NONE",
    "CAT_FAIL_READ",
    "CAT_FAIL_READONLY",
    "CAT_FAIL_WRITE",
    "CAT_OK_FAILOVER_READ",
    "CAT_OK_READ",
    "CAT_OK_WRITE",
    "TransitionTimeline",
    "classify_ops",
    "default_guard_band_s",
    "fast_run_mode",
    "merge_guard_bands",
    "realize_timeline",
]
