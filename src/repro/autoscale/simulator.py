"""Scaling-policy evaluation on the calibrated lifecycle model.

Jobs arrive on a load profile; workers serve them; a scaling policy is
consulted every ``decision_interval_s`` and its add/remove decisions pay
the paper's measured instance add times (Table 1: ~12-19 min for small
workers) and suspend times.  The outcome reports the user-visible
latency and the instance-hours billed -- Section 6.2's trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.autoscale.policies import FleetView, ScalingPolicy
from repro.cluster.lifecycle import LifecycleTimingModel
from repro.simcore import Distribution, Environment, RandomStreams, Store


@dataclass(frozen=True)
class LoadProfile:
    """A piecewise arrival-rate profile plus job service times.

    ``phases`` is a sequence of (duration_s, jobs_per_hour) segments.
    """

    phases: Tuple[Tuple[float, float], ...]
    service: Distribution = field(
        default_factory=lambda: Distribution.lognormal_from_mean_std(300.0, 100.0)
    )

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("profile needs at least one phase")
        if any(d <= 0 or rate < 0 for d, rate in self.phases):
            raise ValueError("phases need positive durations, rates >= 0")

    @property
    def horizon_s(self) -> float:
        return sum(duration for duration, _rate in self.phases)

    @classmethod
    def bursty(
        cls,
        quiet_hours: float = 1.0,
        burst_hours: float = 1.0,
        quiet_rate: float = 10.0,
        burst_rate: float = 240.0,
        cycles: int = 3,
    ) -> "LoadProfile":
        """The diurnal quiet/burst pattern the paper's apps see."""
        phases: List[Tuple[float, float]] = []
        for _ in range(cycles):
            phases.append((quiet_hours * 3600.0, quiet_rate))
            phases.append((burst_hours * 3600.0, burst_rate))
        return cls(phases=tuple(phases))


@dataclass
class ScalingOutcome:
    """What a policy cost and what users experienced."""

    policy: str
    jobs_completed: int
    jobs_unserved: int
    mean_wait_s: float
    p95_wait_s: float
    max_wait_s: float
    instance_hours: float
    peak_instances: int
    scale_actions: int

    def summary_row(self) -> List[object]:
        return [
            self.policy, self.jobs_completed, self.mean_wait_s,
            self.p95_wait_s, self.instance_hours, self.peak_instances,
        ]


class ScalingSimulator:
    """Evaluates one policy against one load profile."""

    def __init__(
        self,
        policy: ScalingPolicy,
        profile: LoadProfile,
        seed: int = 0,
        initial_count: int = 4,
        drain_s: float = 3600.0,
    ) -> None:
        if initial_count < 1:
            raise ValueError("initial_count must be >= 1")
        self.policy = policy
        self.profile = profile
        self.seed = seed
        self.initial_count = initial_count
        self.drain_s = drain_s

    def run(self) -> ScalingOutcome:
        env = Environment()
        streams = RandomStreams(self.seed)
        rng = streams.stream("autoscale.load")
        timing = LifecycleTimingModel(streams.stream("autoscale.fabric"))
        slots = Store(env)

        state = {
            "ready": 0,
            "starting": 0,
            "backlog": 0,
            "completed": 0,
            "completed_recent": 0,
            "actions": 0,
            "peak": 0,
        }
        waits: List[float] = []
        #: (ready_time, retire_time or None) per instance, for billing
        #: (billed while usable; startup time is the user's wait, not a
        #: billed hour, and identically so for every policy).
        instance_spans: List[List[Optional[float]]] = []

        def bring_up(delay_s: float):
            state["starting"] += 1
            yield env.timeout(delay_s)
            state["starting"] -= 1
            state["ready"] += 1
            state["peak"] = max(state["peak"], state["ready"])
            instance_spans.append([env.now, None])
            idx = len(instance_spans) - 1
            yield slots.put(idx)

        def retire(count: int) -> int:
            removed = 0
            while removed < count and slots.items:
                idx = slots.items.pop()  # take an idle slot out of rotation
                suspend = timing.suspend_duration("worker", "small")
                instance_spans[idx][1] = env.now + suspend
                state["ready"] -= 1
                removed += 1
            return removed

        def job(env, arrived_at: float):
            state["backlog"] += 1
            got = yield slots.get()
            state["backlog"] -= 1
            waits.append(env.now - arrived_at)
            yield env.timeout(max(self.profile.service.sample(rng), 1.0))
            state["completed"] += 1
            state["completed_recent"] += 1
            yield slots.put(got)

        def load(env):
            for duration, per_hour in self.profile.phases:
                end = env.now + duration
                if per_hour <= 0:
                    yield env.timeout(duration)
                    continue
                mean_gap = 3600.0 / per_hour
                while env.now < end:
                    gap = float(rng.exponential(mean_gap))
                    if env.now + gap >= end:
                        yield env.timeout(end - env.now)
                        break
                    yield env.timeout(gap)
                    env.process(job(env, env.now))

        def controller(env):
            while True:
                view = FleetView(
                    time_s=env.now,
                    ready=state["ready"],
                    starting=state["starting"],
                    backlog=state["backlog"],
                    completed_recent=state["completed_recent"],
                )
                state["completed_recent"] = 0
                desired = max(self.policy.desired_count(view), 1)
                provisioned = state["ready"] + state["starting"]
                if desired > provisioned:
                    state["actions"] += 1
                    offsets = timing.ready_times(
                        "worker", "small", desired - provisioned, phase="add"
                    )
                    for off in offsets:
                        env.process(bring_up(off))
                elif desired < provisioned:
                    if retire(provisioned - desired):
                        state["actions"] += 1
                yield env.timeout(self.policy.decision_interval_s)

        # Initial fleet boots through the (faster) run phase.
        for off in timing.ready_times(
            "worker", "small", self.initial_count, phase="run"
        ):
            env.process(bring_up(off))
        env.process(load(env))
        env.process(controller(env))
        horizon = self.profile.horizon_s + self.drain_s
        env.run(until=horizon)

        unserved = state["backlog"]
        hours = sum(
            ((end if end is not None else horizon) - start) / 3600.0
            for start, end in instance_spans
        )
        if waits:
            arr = np.asarray(waits)
            mean_w, p95_w, max_w = (
                float(arr.mean()),
                float(np.percentile(arr, 95)),
                float(arr.max()),
            )
        else:
            mean_w = p95_w = max_w = float("nan")
        return ScalingOutcome(
            policy=self.policy.name,
            jobs_completed=state["completed"],
            jobs_unserved=unserved,
            mean_wait_s=mean_w,
            p95_wait_s=p95_w,
            max_wait_s=max_w,
            instance_hours=hours,
            peak_instances=state["peak"],
            scale_actions=state["actions"],
        )


def compare_policies(
    policies: Sequence[ScalingPolicy],
    profile: LoadProfile,
    seed: int = 0,
    initial_count: int = 4,
) -> List[ScalingOutcome]:
    """Run each policy against the same load and seed."""
    return [
        ScalingSimulator(
            policy, profile, seed=seed, initial_count=initial_count
        ).run()
        for policy in policies
    ]
