"""Dynamic scaling policies over the calibrated VM lifecycle model.

Section 6.2 of the paper: "If fast scaling out is important,
hot-standbys may be required if a 10 min delay is not acceptable,
although this option would incur a higher economic cost."  This package
turns that remark into a library: scaling policies that decide when to
add/remove instances, a simulator that charges them the paper's
measured create/run/add times, and metrics that expose the
latency-vs-cost trade-off.
"""

from repro.autoscale.policies import (
    FixedFleet,
    HotStandby,
    ReactivePolicy,
    ScalingPolicy,
    SchedulePolicy,
)
from repro.autoscale.simulator import (
    LoadProfile,
    ScalingOutcome,
    ScalingSimulator,
)

__all__ = [
    "FixedFleet",
    "HotStandby",
    "LoadProfile",
    "ReactivePolicy",
    "ScalingOutcome",
    "ScalingPolicy",
    "SchedulePolicy",
    "ScalingSimulator",
]
