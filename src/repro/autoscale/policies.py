"""Scaling policies: when to grow or shrink the worker fleet.

A policy is consulted periodically with a :class:`FleetView` snapshot
and answers with a desired instance count.  The simulator applies the
decision through the fabric's measured add/suspend times, so policies
pay the paper's ~10-minute scale-out latency (Table 1) for every
instance they request late.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple


@dataclass(frozen=True)
class FleetView:
    """What a policy can observe at decision time."""

    time_s: float
    ready: int
    starting: int
    backlog: int
    #: Jobs completed since the previous decision point.
    completed_recent: int

    @property
    def provisioned(self) -> int:
        return self.ready + self.starting


class ScalingPolicy:
    """Base policy: return the desired total instance count."""

    #: How often the simulator consults the policy.
    decision_interval_s: float = 60.0

    def desired_count(self, view: FleetView) -> int:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


class FixedFleet(ScalingPolicy):
    """Never scales: the statically provisioned baseline."""

    def __init__(self, count: int) -> None:
        if count < 1:
            raise ValueError("count must be >= 1")
        self.count = count

    def desired_count(self, view: FleetView) -> int:
        return self.count

    @property
    def name(self) -> str:
        return f"fixed({self.count})"


class HotStandby(ScalingPolicy):
    """Keep ``standbys`` idle instances beyond the reactive target.

    The Section 6.2 recommendation: pay for warm capacity so bursts
    never wait on a 10-minute boot.
    """

    def __init__(self, base: int, standbys: int,
                 per_instance_backlog: float = 4.0) -> None:
        if base < 1 or standbys < 0:
            raise ValueError("base >= 1 and standbys >= 0 required")
        self.base = base
        self.standbys = standbys
        self.per_instance_backlog = per_instance_backlog

    def desired_count(self, view: FleetView) -> int:
        demand = max(
            self.base,
            int(view.backlog / self.per_instance_backlog),
        )
        return demand + self.standbys

    @property
    def name(self) -> str:
        return f"hot-standby({self.base}+{self.standbys})"


class ReactivePolicy(ScalingPolicy):
    """Scale out when backlog per provisioned instance crosses a
    threshold; scale in when the fleet idles.  The on-demand strategy
    that eats the full scale-out delay."""

    def __init__(
        self,
        base: int,
        scale_out_backlog: float = 8.0,
        scale_in_backlog: float = 1.0,
        step: int = 4,
        max_count: int = 64,
    ) -> None:
        if base < 1 or step < 1 or max_count < base:
            raise ValueError("invalid reactive policy parameters")
        self.base = base
        self.scale_out_backlog = scale_out_backlog
        self.scale_in_backlog = scale_in_backlog
        self.step = step
        self.max_count = max_count

    def desired_count(self, view: FleetView) -> int:
        per_instance = view.backlog / max(view.provisioned, 1)
        if per_instance > self.scale_out_backlog:
            desired = view.provisioned + self.step
        elif per_instance < self.scale_in_backlog and view.backlog == 0:
            desired = view.provisioned - 1
        else:
            desired = view.provisioned
        # Clamp on every branch: an externally over-provisioned fleet
        # (e.g. a policy change mid-run) must still converge into
        # [base, max_count].
        return min(max(desired, self.base), self.max_count)

    @property
    def name(self) -> str:
        return f"reactive(+{self.step})"


class SchedulePolicy(ScalingPolicy):
    """Pre-provision on a clock: the 'we know the burst is at 9am'
    strategy.  ``schedule`` maps (start_s, count) breakpoints."""

    def __init__(self, schedule: Sequence[Tuple[float, int]]) -> None:
        if not schedule:
            raise ValueError("schedule must not be empty")
        self.schedule = sorted(schedule)
        if any(count < 1 for _, count in self.schedule):
            raise ValueError("scheduled counts must be >= 1")

    def desired_count(self, view: FleetView) -> int:
        current = self.schedule[0][1]
        for start, count in self.schedule:
            if view.time_s >= start:
                current = count
        return current

    @property
    def name(self) -> str:
        return f"scheduled({len(self.schedule)} steps)"
