"""The unified storage request path.

The paper measures three storage services (Figs. 1-3) that share one
real architecture: clients issue sized requests that traverse a front
end, a partition server, and the network.  This package implements that
pipeline once:

* :mod:`repro.service.spec`     -- :class:`OpSpec`, the declarative
  resource-demand record every operation is described by;
* :mod:`repro.service.pipeline` -- :class:`RequestPipeline`, the
  admission -> base latency -> partition routing -> server queue/latch
  -> network transfer -> commit sequence that
  :class:`~repro.storage.blob.BlobService`,
  :class:`~repro.storage.table.TableService` and
  :class:`~repro.storage.queue.QueueService` are thin op-tables over;
* :mod:`repro.service.tracing`  -- :class:`RequestTracer`, the
  per-request structured trace log (op kind, size, queue wait, transfer
  time, retries, outcome) built on
  :class:`repro.simcore.tracing.TraceRecorder` and surfaced through
  :mod:`repro.monitoring`.

The pipeline is stage-exact with the three request paths it replaced:
every RNG draw and every kernel event happens at the same point in the
same order, so the golden digests (fig1-fig5, table1, table2) are
bit-identical across the refactor.
"""

from repro.service.pipeline import LatencyProfile, RequestPipeline, TransferSpec
from repro.service.spec import OpSpec
from repro.service.tracing import RequestTrace, RequestTracer

__all__ = [
    "LatencyProfile",
    "OpSpec",
    "RequestPipeline",
    "RequestTrace",
    "RequestTracer",
    "TransferSpec",
]
