"""Declarative operation specs for the unified request path.

Every storage operation — blob put, table insert, queue receive, … — is
described by one :class:`OpSpec` record stating what the operation
*demands* from a partition server (CPU, latch hold, payload budget,
front-end weight).  The spec is consumed by
:meth:`repro.storage.partition.PartitionServer.execute`; the services
build their op tables from it instead of hand-rolling per-service
request plumbing.

Historically this class lived in :mod:`repro.storage.partition`, which
still re-exports it for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional


@dataclass(frozen=True)
class OpSpec:
    """Resource demands of one storage operation.

    Attributes
    ----------
    name:
        Operation label (metrics only).
    cpu_s:
        Mean CPU seconds consumed on the core pool (0 to skip).
    exclusive_s:
        Mean seconds holding the exclusive latch named by ``latch_key``.
    latch_key:
        Which latch the operation serializes on (None for lock-free ops).
    payload_mb:
        Request payload counted against the ingest budget.
    frontend_scale:
        Multiplier on the server's per-connection service curve (cheap
        read paths like queue Peek use < 1).
    deterministic:
        If True, service times are used as-is; otherwise they are drawn
        exponentially around the mean (the default, giving realistic
        response-time variance).
    """

    name: str
    cpu_s: float = 0.0
    exclusive_s: float = 0.0
    latch_key: Optional[Hashable] = None
    payload_mb: float = 0.0
    frontend_scale: float = 1.0
    deterministic: bool = False


__all__ = ["OpSpec"]
