"""The request pipeline every storage service runs on.

One request = one pass through :meth:`RequestPipeline.execute`, whose
stages mirror the real Azure front-end path the paper measured:

    admission  ->  base latency  ->  precheck  ->  partition routing
    -> server queue/latch  ->  server-side work  ->  network transfer
    -> commit / completion

Each service (blob, table, queue) supplies only the stages its
operations use: the blob path has network transfers but no partition
server; table and queue route to partition servers but move no bulk
bytes.  The pipeline is *stage-exact* with the per-service request code
it replaced — every RNG draw and kernel event happens at the same
simulation instant in the same order, which is what keeps the golden
experiment digests bit-identical.

Laziness rules (load-bearing for bit-neutrality):

* ``op`` may be a zero-argument callable returning an :class:`OpSpec`;
  it is evaluated *after* the base-latency delay, immediately before
  ``server.execute`` — some table ops size themselves from state read
  at that instant.
* ``transfer`` may likewise be a callable returning a
  :class:`TransferSpec`, evaluated when the transfer stage starts.
* ``commit`` runs after every delay stage; state mutation and
  semantic errors (not-found, precondition) belong there, at the same
  instant the legacy code performed them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Tuple, Union

import numpy as np

from repro.observability import spans as spanlib
from repro.observability.spans import SpanTracer
from repro.service.spec import OpSpec
from repro.service.tracing import RequestTrace, RequestTracer


@dataclass(frozen=True)
class LatencyProfile:
    """Base request latency: a fixed floor plus exponential jitter.

    ``draw`` returns ``base * fixed_frac + Exp(base * jitter_frac)``.
    Blob uses (0.8, 0.2); table and queue use (0.85, 0.15).
    """

    fixed_frac: float = 0.85
    jitter_frac: float = 0.15

    def draw(self, rng: np.random.Generator, base_s: float) -> float:
        return base_s * self.fixed_frac + float(
            rng.exponential(base_s * self.jitter_frac)
        )


@dataclass(frozen=True)
class TransferSpec:
    """A bulk network transfer performed by the request.

    ``acquire``/``release`` bracket the flow for connection accounting
    (the blob front-end service curves read per-link connection counts
    while the flow is active); ``release`` runs in a ``finally`` so
    abandoned requests never leak a connection.
    """

    route: Tuple[Any, ...]
    size_mb: float
    label: str = ""
    acquire: Optional[Callable[[], None]] = None
    release: Optional[Callable[[], None]] = None


#: Stage inputs that may be supplied lazily.
OpInput = Union[OpSpec, Callable[[], OpSpec], None]
TransferInput = Union[TransferSpec, Callable[[], TransferSpec], None]


class RequestPipeline:
    """Executes requests for one storage service.

    Parameters
    ----------
    env / rng:
        The simulation environment and the service's RNG stream.
    service:
        Service name stamped on traces and errors (e.g. ``"storage.blob"``).
    latency:
        The service's :class:`LatencyProfile`.
    network:
        :class:`repro.network.FlowNetwork` (required for transfer stages).
    router:
        Maps a routing key to a partition server (required for routed ops).
    owner:
        The service object; consulted for its ``fault_injector`` at
        admission so drills keep working unchanged.
    tracer:
        Optional :class:`RequestTracer`; every request emits one
        :class:`RequestTrace` on completion, including failures.
    """

    def __init__(
        self,
        env: Any,
        rng: np.random.Generator,
        service: str,
        latency: LatencyProfile = LatencyProfile(),
        network: Optional[Any] = None,
        router: Optional[Callable[[Any], Any]] = None,
        owner: Optional[Any] = None,
        tracer: Optional[RequestTracer] = None,
    ) -> None:
        self.env = env
        self.rng = rng
        self.service = service
        self.latency = latency
        self.network = network
        self.router = router
        self.owner = owner
        self.tracer = tracer

    @property
    def fault_injector(self) -> Optional[Any]:
        """The owning service's fault injector (drills set it per-service)."""
        return getattr(self.owner, "fault_injector", None)

    # -- execution ---------------------------------------------------------
    def execute(
        self,
        kind: str,
        op: OpInput = None,
        *,
        base_latency_s: float = 0.0,
        admit: bool = False,
        admit_op: Optional[OpSpec] = None,
        precheck: Optional[Callable[[], None]] = None,
        route: Optional[Any] = None,
        work_s: float = 0.0,
        transfer: TransferInput = None,
        commit: Optional[Callable[[], Any]] = None,
    ) -> Generator:
        """Run one request; yields inside the caller's process.

        Stage order (each optional, all in this sequence):

        1. *admission* — if ``admit``, the owner's fault injector may
           delay or fail the request (``admit_op`` names the op to it);
        2. *base latency* — one ``latency.draw`` over ``base_latency_s``;
        3. ``precheck()`` — early semantic validation;
        4. *routing* — ``router(route)`` picks the partition server and
           ``op`` (evaluated now if callable) runs on it, measuring
           queue/latch wait through the server's observer hook;
        5. *work* — a deterministic ``work_s`` server-side delay;
        6. *transfer* — the flow runs on ``network`` with connection
           accounting and a ``poke`` on completion;
        7. ``commit()`` — state mutation; its return value is the
           request's result.

        Exactly one trace record is emitted per request, successful or
        not, carrying the stage timings observed up to the outcome.
        When the tracer carries a
        :class:`~repro.observability.spans.SpanTracer`, the request also
        emits a span tree — one server span (parented under the ambient
        client-attempt context if one is bound) with one child per
        executed stage, wait spans under the routing stage, and a flow
        span under the transfer stage.  Span capture reads the clock
        only: no RNG draw, no kernel event.
        """
        env = self.env
        trace = RequestTrace(
            service=self.service,
            op=kind,
            started_at=env.now,
            finished_at=env.now,
        )
        spans = self._span_tracer()
        server_span = None
        if spans is not None:
            server_span = spans.start(
                f"{self.service}.{kind}",
                spanlib.SERVER,
                env.now,
                parent=spans.current,
                service=self.service,
                op=kind,
            )

        def stage_span(name: str, start_s: float, **attrs: Any) -> None:
            if spans is not None and server_span is not None:
                spans.emit(
                    f"stage:{name}",
                    spanlib.STAGE,
                    start_s,
                    env.now,
                    parent=server_span.context,
                    **attrs,
                )

        try:
            if admit:
                injector = self.fault_injector
                if injector is not None:
                    entered = env.now
                    yield from injector.intercept(self.owner, admit_op)
                    stage_span("admission", entered)

            if base_latency_s > 0:
                delay = self.latency.draw(self.rng, base_latency_s)
                trace.base_latency_s = delay
                entered = env.now
                yield env.timeout(delay)
                stage_span("base_latency", entered)

            if precheck is not None:
                entered = env.now
                precheck()
                stage_span("precheck", entered)

            if route is not None:
                if self.router is None:
                    raise ValueError(
                        f"{self.service}: op {kind!r} routes but the"
                        " pipeline has no router"
                    )
                server = self.router(route)
                spec = op() if callable(op) else op
                if spec is None:
                    raise ValueError(
                        f"{self.service}: routed op {kind!r} needs an OpSpec"
                    )
                trace.size_mb = spec.payload_mb
                waited = [0.0]
                routing_span = None
                if spans is not None and server_span is not None:
                    routing_span = spans.start(
                        "stage:routing",
                        spanlib.STAGE,
                        env.now,
                        parent=server_span.context,
                        payload_mb=spec.payload_mb,
                    )

                def observe_wait(stage: str, seconds: float) -> None:
                    # Only queue/latch waits count as queue_wait_s; other
                    # observer stages are span-only measurements.
                    if stage.endswith("_wait"):
                        waited[0] += seconds
                    if spans is not None and routing_span is not None:
                        spans.emit(
                            stage,
                            spanlib.WAIT
                            if stage.endswith("_wait")
                            else spanlib.STAGE,
                            env.now - seconds,
                            env.now,
                            parent=routing_span.context,
                        )

                entered = env.now
                try:
                    yield from server.execute(spec, observer=observe_wait)
                finally:
                    if spans is not None and routing_span is not None:
                        spans.finish(routing_span, env.now)
                trace.server_s = env.now - entered
                trace.queue_wait_s = waited[0]

            if work_s > 0:
                entered = env.now
                yield env.timeout(work_s)
                stage_span("work", entered)

            if transfer is not None:
                xfer = transfer() if callable(transfer) else transfer
                if self.network is None:
                    raise ValueError(
                        f"{self.service}: op {kind!r} transfers but the"
                        " pipeline has no network"
                    )
                trace.size_mb = xfer.size_mb
                started = env.now
                if xfer.acquire is not None:
                    xfer.acquire()
                try:
                    flow = self.network.transfer(
                        xfer.route, xfer.size_mb, label=xfer.label
                    )
                    yield flow.done
                finally:
                    if xfer.release is not None:
                        xfer.release()
                    # Connection release changes front-end caps; let the
                    # network re-solve the affected component.
                    self.network.poke()
                trace.transfer_s = env.now - started
                if spans is not None and server_span is not None:
                    stage = spans.start(
                        "stage:transfer",
                        spanlib.STAGE,
                        started,
                        parent=server_span.context,
                        size_mb=xfer.size_mb,
                    )
                    spans.emit(
                        f"flow:{xfer.label}" if xfer.label else "flow",
                        spanlib.FLOW,
                        started,
                        env.now,
                        parent=stage.context,
                        size_mb=xfer.size_mb,
                    )
                    spans.finish(stage, env.now)

            if commit is not None:
                entered = env.now
                result = commit()
                stage_span("commit", entered)
            else:
                result = None
        except BaseException as error:
            trace.outcome = type(error).__name__
            trace.finished_at = env.now
            if self.tracer is not None:
                self.tracer.observe(trace)
            if spans is not None and server_span is not None:
                spans.finish(server_span, env.now, type(error).__name__)
            raise
        trace.finished_at = env.now
        if self.tracer is not None:
            self.tracer.observe(trace)
        if spans is not None and server_span is not None:
            spans.finish(server_span, env.now)
        return result

    def _span_tracer(self) -> Optional[SpanTracer]:
        """The attached span collector, if any and enabled."""
        spans = getattr(self.tracer, "spans", None)
        if spans is None or not spans.enabled:
            return None
        return spans


__all__ = ["LatencyProfile", "RequestPipeline", "TransferSpec"]
