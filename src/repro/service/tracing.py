"""Per-request structured traces for the unified request path.

Every request that runs through :class:`repro.service.pipeline.RequestPipeline`
emits one :class:`RequestTrace` (op kind, payload size, queue wait,
transfer time, outcome); every client call that runs through
:class:`repro.client.service_client.ServiceClient` emits a second,
call-level record carrying the retry count.  Both land in a
:class:`RequestTracer`, which is a bounded window over
:class:`repro.simcore.tracing.TraceRecorder` plus exact running
aggregates and per-``(service, op)`` streaming latency histograms
(:class:`repro.observability.histogram.Histogram`) — so a full-scale
experiment can keep tracing on without the event list growing with the
run, and percentiles survive the window trimming.

The tracer is read back through :mod:`repro.monitoring`
(:func:`~repro.monitoring.attach_request_tracer`,
:func:`~repro.monitoring.request_summary`).  Span-level tracing rides
along: attach a :class:`repro.observability.spans.SpanTracer` as
:attr:`RequestTracer.spans` and the client/pipeline/partition layers
emit one causal span tree per request (see
:mod:`repro.observability`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.observability.histogram import Histogram
from repro.simcore.tracing import TraceRecorder

#: Outcome value recorded for a request that completed without error.
OK = "ok"


@dataclass
class RequestTrace:
    """One request (or one client call) through the unified pipeline.

    Times are simulation seconds.  ``outcome`` is :data:`OK` or the
    exception class name that terminated the request.  For server-side
    records ``retries`` is always 0; client-call records carry the
    retry count of the whole call.
    """

    service: str
    op: str
    started_at: float
    finished_at: float
    size_mb: float = 0.0
    base_latency_s: float = 0.0
    queue_wait_s: float = 0.0
    server_s: float = 0.0
    transfer_s: float = 0.0
    retries: int = 0
    outcome: str = OK

    @property
    def ok(self) -> bool:
        return self.outcome == OK

    @property
    def latency_s(self) -> float:
        return self.finished_at - self.started_at


class RequestTracer:
    """Bounded per-request trace log with exact running aggregates.

    ``capacity`` bounds how many individual records are retained (the
    most recent ones win); the counters ``total``/``errors``/``dropped``,
    the per-``(service, op)`` tallies and the streaming latency
    histograms stay exact regardless of trimming.  Pass
    ``capacity=None`` to retain everything.
    """

    #: Trace kinds used on the underlying recorder.
    REQUEST_KIND = "request"
    CLIENT_KIND = "client_call"

    def __init__(
        self, capacity: Optional[int] = 100_000, enabled: bool = True
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None)")
        self.recorder = TraceRecorder(enabled=enabled)
        self.capacity = capacity
        self.dropped = 0
        self.total = 0
        self.errors = 0
        self.client_total = 0
        self.client_errors = 0
        self.retries = 0
        self._per_op: Dict[Tuple[str, str], Dict[str, float]] = {}
        self._latency: Dict[Tuple[str, str], Histogram] = {}
        self._client_per_op: Dict[Tuple[str, str], Dict[str, float]] = {}
        self._client_latency: Dict[Tuple[str, str], Histogram] = {}
        #: Optional span collector (see
        #: :mod:`repro.observability.spans`); when attached, the client
        #: and pipeline layers emit causal spans into it.
        self.spans = None  # type: Optional[object]

    @property
    def enabled(self) -> bool:
        return self.recorder.enabled

    # -- ingestion ---------------------------------------------------------
    def observe(self, trace: RequestTrace) -> None:
        """Record one server-side request trace."""
        if not self.recorder.enabled:
            return
        self.total += 1
        if not trace.ok:
            self.errors += 1
        self._fold(trace)
        self._append(self.REQUEST_KIND, trace)

    def observe_call(self, trace: RequestTrace) -> None:
        """Record one client-call trace (whole retried operation)."""
        if not self.recorder.enabled:
            return
        self.client_total += 1
        if not trace.ok:
            self.client_errors += 1
        self.retries += trace.retries
        self._fold_client(trace)
        self._append(self.CLIENT_KIND, trace)

    def observe_batch(
        self,
        service: str,
        op: str,
        latencies: Sequence[float],
        *,
        queue_waits: Optional[Sequence[float]] = None,
        transfers: Optional[Sequence[float]] = None,
        sizes_mb: Optional[Sequence[float]] = None,
        errors: int = 0,
        client: bool = False,
    ) -> None:
        """Fold a whole batch of completed requests in one call.

        The cohort (fluid) client path completes many statistically
        identical requests per kernel event; this ingests them without
        per-request Python work: the exact counters, the per-``(service,
        op)`` aggregate sums and the streaming latency histogram all
        update vectorized.  ``latencies`` holds the *successful*
        latencies; ``errors`` adds failed requests to the error counters
        (their latencies are not histogrammed, matching the scalar
        path).  With ``client=True`` the batch folds into the
        client-call view instead of the server-side one.

        Individual :class:`RequestTrace` records are *not* appended —
        batch ingestion trades the bounded raw-record window for
        aggregate-only accounting, so ``records()`` stays empty under
        pure cohort traffic while totals, aggregates and percentiles
        remain exact.
        """
        if not self.recorder.enabled:
            return
        arr = np.asarray(latencies, dtype=float).reshape(-1)
        n = int(arr.size)
        total_n = n + errors
        if total_n == 0:
            return
        key = (service, op)
        if client:
            self.client_total += total_n
            self.client_errors += errors
            agg = self._client_per_op.get(key)
            if agg is None:
                agg = {"count": 0.0, "errors": 0.0, "retries": 0.0}
                self._client_per_op[key] = agg
            agg["count"] += total_n
            agg["errors"] += errors
            if n:
                hist = self._client_latency.get(key)
                if hist is None:
                    hist = Histogram(f"{service}.{op}.call")
                    self._client_latency[key] = hist
                hist.observe_batch(arr)
            return
        self.total += total_n
        self.errors += errors
        agg = self._per_op.get(key)
        if agg is None:
            agg = {
                "count": 0.0,
                "errors": 0.0,
                "latency_s": 0.0,
                "queue_wait_s": 0.0,
                "transfer_s": 0.0,
                "size_mb": 0.0,
            }
            self._per_op[key] = agg
        agg["count"] += total_n
        agg["errors"] += errors
        agg["latency_s"] += float(arr.sum())
        if queue_waits is not None:
            agg["queue_wait_s"] += float(np.sum(queue_waits))
        if transfers is not None:
            agg["transfer_s"] += float(np.sum(transfers))
        if sizes_mb is not None:
            agg["size_mb"] += float(np.sum(sizes_mb))
        if n:
            hist = self._latency.get(key)
            if hist is None:
                hist = Histogram(f"{service}.{op}")
                self._latency[key] = hist
            hist.observe_batch(arr)

    def _fold(self, trace: RequestTrace) -> None:
        key = (trace.service, trace.op)
        agg = self._per_op.get(key)
        if agg is None:
            agg = {
                "count": 0.0,
                "errors": 0.0,
                "latency_s": 0.0,
                "queue_wait_s": 0.0,
                "transfer_s": 0.0,
                "size_mb": 0.0,
            }
            self._per_op[key] = agg
        agg["count"] += 1
        if not trace.ok:
            agg["errors"] += 1
        agg["latency_s"] += trace.latency_s
        agg["queue_wait_s"] += trace.queue_wait_s
        agg["transfer_s"] += trace.transfer_s
        agg["size_mb"] += trace.size_mb
        if trace.ok:
            hist = self._latency.get(key)
            if hist is None:
                hist = Histogram(f"{trace.service}.{trace.op}")
                self._latency[key] = hist
            hist.observe(trace.latency_s)

    def _fold_client(self, trace: RequestTrace) -> None:
        key = (trace.service, trace.op)
        agg = self._client_per_op.get(key)
        if agg is None:
            agg = {"count": 0.0, "errors": 0.0, "retries": 0.0}
            self._client_per_op[key] = agg
        agg["count"] += 1
        if not trace.ok:
            agg["errors"] += 1
        agg["retries"] += trace.retries
        if trace.ok:
            hist = self._client_latency.get(key)
            if hist is None:
                hist = Histogram(f"{trace.service}.{trace.op}.call")
                self._client_latency[key] = hist
            hist.observe(trace.latency_s)

    def _append(self, kind: str, trace: RequestTrace) -> None:
        self.recorder.record(trace.finished_at, kind, trace=trace)
        cap = self.capacity
        if cap is None:
            return
        events = self.recorder.events
        # Trim in blocks so retention is O(1) amortized per record.
        if len(events) >= cap + max(cap // 4, 1):
            drop = len(events) - cap
            del events[:drop]
            self.dropped += drop

    # -- retrieval ---------------------------------------------------------
    def records(self) -> List[RequestTrace]:
        """Retained server-side request traces, oldest first."""
        return [
            e.data["trace"]
            for e in self.recorder.events
            if e.kind == self.REQUEST_KIND
        ]

    def client_calls(self) -> List[RequestTrace]:
        """Retained client-call traces, oldest first."""
        return [
            e.data["trace"]
            for e in self.recorder.events
            if e.kind == self.CLIENT_KIND
        ]

    def of_op(self, op: str) -> List[RequestTrace]:
        return [t for t in self.records() if t.op == op]

    def per_service_op_totals(self) -> Dict[Tuple[str, str], Dict[str, float]]:
        """Exact aggregate sums keyed by ``(service, op)`` (never trimmed).

        Each value maps ``count / errors / latency_s / queue_wait_s /
        transfer_s / size_mb`` to the running totals for that pair.
        """
        return {key: dict(agg) for key, agg in self._per_op.items()}

    def per_op_totals(self) -> Dict[str, Dict[str, float]]:
        """Compatibility view of :meth:`per_service_op_totals`, keyed by
        op kind alone (two services sharing an op name are summed —
        use the ``(service, op)``-keyed form to keep them apart)."""
        out: Dict[str, Dict[str, float]] = {}
        for (_service, op), agg in self._per_op.items():
            merged = out.get(op)
            if merged is None:
                out[op] = dict(agg)
            else:
                for field, value in agg.items():
                    merged[field] += value
        return out

    def client_per_op_totals(self) -> Dict[Tuple[str, str], Dict[str, float]]:
        """Exact client-call aggregates keyed by ``(service, op)``
        (``count / errors / retries``)."""
        return {key: dict(agg) for key, agg in self._client_per_op.items()}

    def latency_histograms(self) -> Dict[Tuple[str, str], Histogram]:
        """Per-``(service, op)`` streaming histograms of *successful*
        server-side request latencies.  These survive capacity trimming,
        which makes them the percentile source of record."""
        return dict(self._latency)

    def client_latency_histograms(self) -> Dict[Tuple[str, str], Histogram]:
        """Per-``(service, op)`` histograms of successful client-call
        latencies (the client-observed view, through retries/hedging)."""
        return dict(self._client_latency)

    # -- serialization -----------------------------------------------------
    #: Joiner for ``(service, op)`` keys in snapshot dicts — service
    #: names and op kinds both contain dots ("account.blobs",
    #: "blob.download"), so a pipe keeps the pair splittable.
    _KEY_JOIN = "|"

    @classmethod
    def _snapshot_key(cls, key: Tuple[str, str]) -> str:
        return cls._KEY_JOIN.join(key)

    @classmethod
    def _parse_key(cls, key: str) -> Tuple[str, str]:
        service, _, op = key.partition(cls._KEY_JOIN)
        return service, op

    def snapshot(self) -> Dict[str, object]:
        """JSON-able aggregate state: counters, per-``(service, op)``
        totals, and every streaming histogram bucket-for-bucket.

        The bounded raw-record window is deliberately *not* serialized
        — aggregates and histograms are the exact, trim-proof science;
        the window is a debugging convenience.  Round-trips through
        :meth:`from_snapshot` (the catalog stores these per sweep cell).
        """
        return {
            "total": self.total,
            "errors": self.errors,
            "client_total": self.client_total,
            "client_errors": self.client_errors,
            "retries": self.retries,
            "dropped": self.dropped,
            "per_op": {
                self._snapshot_key(k): dict(v)
                for k, v in self._per_op.items()
            },
            "client_per_op": {
                self._snapshot_key(k): dict(v)
                for k, v in self._client_per_op.items()
            },
            "latency": {
                self._snapshot_key(k): h.to_dict()
                for k, h in self._latency.items()
            },
            "client_latency": {
                self._snapshot_key(k): h.to_dict()
                for k, h in self._client_latency.items()
            },
        }

    @classmethod
    def from_snapshot(cls, payload: Dict[str, object]) -> "RequestTracer":
        """Rebuild a tracer from :meth:`snapshot` output.  Aggregates,
        counters and histograms are restored exactly (percentiles and
        :func:`repro.monitoring.request_summary` render identically);
        the raw-record window starts empty."""
        tracer = cls()
        tracer.total = int(payload.get("total", 0))  # type: ignore[arg-type]
        tracer.errors = int(payload.get("errors", 0))  # type: ignore[arg-type]
        tracer.client_total = int(payload.get("client_total", 0))  # type: ignore[arg-type]
        tracer.client_errors = int(payload.get("client_errors", 0))  # type: ignore[arg-type]
        tracer.retries = int(payload.get("retries", 0))  # type: ignore[arg-type]
        tracer.dropped = int(payload.get("dropped", 0))  # type: ignore[arg-type]
        per_op = payload.get("per_op", {})
        for key, agg in per_op.items():  # type: ignore[union-attr]
            tracer._per_op[cls._parse_key(key)] = {
                str(f): float(v) for f, v in agg.items()
            }
        client_per_op = payload.get("client_per_op", {})
        for key, agg in client_per_op.items():  # type: ignore[union-attr]
            tracer._client_per_op[cls._parse_key(key)] = {
                str(f): float(v) for f, v in agg.items()
            }
        latency = payload.get("latency", {})
        for key, doc in latency.items():  # type: ignore[union-attr]
            tracer._latency[cls._parse_key(key)] = Histogram.from_dict(doc)
        client_latency = payload.get("client_latency", {})
        for key, doc in client_latency.items():  # type: ignore[union-attr]
            tracer._client_latency[cls._parse_key(key)] = (
                Histogram.from_dict(doc)
            )
        return tracer

    def clear(self) -> None:
        self.recorder.events.clear()
        self.dropped = 0
        self.total = 0
        self.errors = 0
        self.client_total = 0
        self.client_errors = 0
        self.retries = 0
        self._per_op.clear()
        self._latency.clear()
        self._client_per_op.clear()
        self._client_latency.clear()

    def __repr__(self) -> str:
        return (
            f"<RequestTracer total={self.total} errors={self.errors}"
            f" client_calls={self.client_total} dropped={self.dropped}>"
        )


__all__ = ["OK", "RequestTrace", "RequestTracer"]
