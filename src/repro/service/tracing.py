"""Per-request structured traces for the unified request path.

Every request that runs through :class:`repro.service.pipeline.RequestPipeline`
emits one :class:`RequestTrace` (op kind, payload size, queue wait,
transfer time, outcome); every client call that runs through
:class:`repro.client.service_client.ServiceClient` emits a second,
call-level record carrying the retry count.  Both land in a
:class:`RequestTracer`, which is a bounded window over
:class:`repro.simcore.tracing.TraceRecorder` plus exact running
aggregates — so a full-scale experiment can keep tracing on without the
event list growing with the run.

The tracer is read back through :mod:`repro.monitoring`
(:func:`~repro.monitoring.attach_request_tracer`,
:func:`~repro.monitoring.request_summary`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.simcore.tracing import TraceRecorder

#: Outcome value recorded for a request that completed without error.
OK = "ok"


@dataclass
class RequestTrace:
    """One request (or one client call) through the unified pipeline.

    Times are simulation seconds.  ``outcome`` is :data:`OK` or the
    exception class name that terminated the request.  For server-side
    records ``retries`` is always 0; client-call records carry the
    retry count of the whole call.
    """

    service: str
    op: str
    started_at: float
    finished_at: float
    size_mb: float = 0.0
    base_latency_s: float = 0.0
    queue_wait_s: float = 0.0
    server_s: float = 0.0
    transfer_s: float = 0.0
    retries: int = 0
    outcome: str = OK

    @property
    def ok(self) -> bool:
        return self.outcome == OK

    @property
    def latency_s(self) -> float:
        return self.finished_at - self.started_at


class RequestTracer:
    """Bounded per-request trace log with exact running aggregates.

    ``capacity`` bounds how many individual records are retained (the
    most recent ones win); the counters ``total``/``errors``/``dropped``
    and the per-(service, op) tallies stay exact regardless of trimming.
    Pass ``capacity=None`` to retain everything.
    """

    #: Trace kinds used on the underlying recorder.
    REQUEST_KIND = "request"
    CLIENT_KIND = "client_call"

    def __init__(
        self, capacity: Optional[int] = 100_000, enabled: bool = True
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None)")
        self.recorder = TraceRecorder(enabled=enabled)
        self.capacity = capacity
        self.dropped = 0
        self.total = 0
        self.errors = 0
        self.client_total = 0
        self.client_errors = 0
        self.retries = 0
        self._per_op: Dict[str, Dict[str, float]] = {}

    @property
    def enabled(self) -> bool:
        return self.recorder.enabled

    # -- ingestion ---------------------------------------------------------
    def observe(self, trace: RequestTrace) -> None:
        """Record one server-side request trace."""
        if not self.recorder.enabled:
            return
        self.total += 1
        if not trace.ok:
            self.errors += 1
        self._fold(trace)
        self._append(self.REQUEST_KIND, trace)

    def observe_call(self, trace: RequestTrace) -> None:
        """Record one client-call trace (whole retried operation)."""
        if not self.recorder.enabled:
            return
        self.client_total += 1
        if not trace.ok:
            self.client_errors += 1
        self.retries += trace.retries
        self._append(self.CLIENT_KIND, trace)

    def _fold(self, trace: RequestTrace) -> None:
        agg = self._per_op.get(trace.op)
        if agg is None:
            agg = {
                "count": 0.0,
                "errors": 0.0,
                "latency_s": 0.0,
                "queue_wait_s": 0.0,
                "transfer_s": 0.0,
                "size_mb": 0.0,
            }
            self._per_op[trace.op] = agg
        agg["count"] += 1
        if not trace.ok:
            agg["errors"] += 1
        agg["latency_s"] += trace.latency_s
        agg["queue_wait_s"] += trace.queue_wait_s
        agg["transfer_s"] += trace.transfer_s
        agg["size_mb"] += trace.size_mb

    def _append(self, kind: str, trace: RequestTrace) -> None:
        self.recorder.record(trace.finished_at, kind, trace=trace)
        cap = self.capacity
        if cap is None:
            return
        events = self.recorder.events
        # Trim in blocks so retention is O(1) amortized per record.
        if len(events) >= cap + max(cap // 4, 1):
            drop = len(events) - cap
            del events[:drop]
            self.dropped += drop

    # -- retrieval ---------------------------------------------------------
    def records(self) -> List[RequestTrace]:
        """Retained server-side request traces, oldest first."""
        return [
            e.data["trace"]
            for e in self.recorder.events
            if e.kind == self.REQUEST_KIND
        ]

    def client_calls(self) -> List[RequestTrace]:
        """Retained client-call traces, oldest first."""
        return [
            e.data["trace"]
            for e in self.recorder.events
            if e.kind == self.CLIENT_KIND
        ]

    def of_op(self, op: str) -> List[RequestTrace]:
        return [t for t in self.records() if t.op == op]

    def per_op_totals(self) -> Dict[str, Dict[str, float]]:
        """Exact per-op aggregate sums (never trimmed); keys are op kinds.

        Each value maps ``count / errors / latency_s / queue_wait_s /
        transfer_s / size_mb`` to the running totals for that op.
        """
        return {op: dict(agg) for op, agg in self._per_op.items()}

    def clear(self) -> None:
        self.recorder.events.clear()
        self.dropped = 0
        self.total = 0
        self.errors = 0
        self.client_total = 0
        self.client_errors = 0
        self.retries = 0
        self._per_op.clear()

    def __repr__(self) -> str:
        return (
            f"<RequestTracer total={self.total} errors={self.errors}"
            f" client_calls={self.client_total} dropped={self.dropped}>"
        )


__all__ = ["OK", "RequestTrace", "RequestTracer"]
