"""The 2009/2010 Azure price book and cost accounting.

Section 5.1 contains the paper's economic argument: "In Windows Azure
the cost to store 1 GB for 1 month is nearly the same as it does to run
a small VM instance for one hour so storing intermediate products to
conserve computation is a valid strategy as long as the data is used
within a month."  This module encodes the launch price book, computes
what a simulated campaign cost, and answers the store-vs-recompute
question quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro import calibration as cal
from repro.modis.app import ModisRunResult
from repro.modis.tasks import TaskKind

#: Windows Azure commercial launch prices (February 2010), USD.
PRICE_SMALL_VM_HOUR = 0.12
PRICE_GB_STORED_MONTH = 0.15
PRICE_PER_10K_TRANSACTIONS = 0.01
PRICE_GB_EGRESS = 0.15
PRICE_GB_INGRESS = 0.10

#: Azure billed cores linearly: medium/large/XL = 2/4/8 small-hours.
VM_HOUR_MULTIPLIER: Dict[str, float] = {
    size: cores for size, cores in cal.VM_CORES.items()
}

HOURS_PER_MONTH = 730.0


@dataclass(frozen=True)
class CostBreakdown:
    """Dollars by meter."""

    compute: float = 0.0
    storage: float = 0.0
    transactions: float = 0.0
    bandwidth: float = 0.0

    @property
    def total(self) -> float:
        return self.compute + self.storage + self.transactions + self.bandwidth

    def __str__(self) -> str:
        return (
            f"${self.total:,.2f} (compute ${self.compute:,.2f}, "
            f"storage ${self.storage:,.2f}, "
            f"transactions ${self.transactions:,.2f}, "
            f"bandwidth ${self.bandwidth:,.2f})"
        )


def vm_hours_cost(hours: float, size: str = "small") -> float:
    """Compute cost of ``hours`` of one VM of ``size``."""
    if hours < 0:
        raise ValueError("hours must be >= 0")
    try:
        multiplier = VM_HOUR_MULTIPLIER[size]
    except KeyError:
        raise ValueError(f"unknown VM size {size!r}") from None
    return hours * multiplier * PRICE_SMALL_VM_HOUR


def storage_cost(gb: float, months: float) -> float:
    """Cost of keeping ``gb`` in blob/table storage for ``months``."""
    if gb < 0 or months < 0:
        raise ValueError("gb and months must be >= 0")
    return gb * months * PRICE_GB_STORED_MONTH


def transaction_cost(count: int) -> float:
    if count < 0:
        raise ValueError("count must be >= 0")
    return count / 10_000.0 * PRICE_PER_10K_TRANSACTIONS


def gb_month_vs_vm_hour() -> float:
    """The paper's Section 5.1 observation, as a ratio (~1)."""
    return PRICE_GB_STORED_MONTH / PRICE_SMALL_VM_HOUR


@dataclass(frozen=True)
class ReuseAdvice:
    """Store-vs-recompute verdict for one intermediate product."""

    store_cost_per_month: float
    recompute_cost: float
    breakeven_months: float

    @property
    def store_if_reused_within_month(self) -> bool:
        """True when storing wins for ~month-scale reuse.  The paper's
        "nearly the same" prices give an hour-per-GB product a
        breakeven of 0.8 months, which it rounds to "within a month"."""
        return self.breakeven_months >= 0.75


def reuse_breakeven(
    product_gb: float,
    recompute_vm_hours: float,
    size: str = "small",
) -> ReuseAdvice:
    """How long may a cached product sit before caching loses?

    The paper's rule of thumb: with 1 GB-month ~= 1 small-VM-hour, any
    product that takes at least an hour per GB to recompute is worth
    storing for a month.
    """
    if product_gb <= 0:
        raise ValueError("product_gb must be > 0")
    if recompute_vm_hours < 0:
        raise ValueError("recompute_vm_hours must be >= 0")
    monthly = storage_cost(product_gb, 1.0)
    recompute = vm_hours_cost(recompute_vm_hours, size)
    return ReuseAdvice(
        store_cost_per_month=monthly,
        recompute_cost=recompute,
        breakeven_months=recompute / monthly if monthly > 0 else float("inf"),
    )


#: Mean storage transactions per task execution (queue receive/delete,
#: status updates, blob checks) -- used by the campaign estimate.
TRANSACTIONS_PER_EXECUTION = 8

#: Mean intermediate-product size per completed compute task, GB.
PRODUCT_GB_PER_TASK = 0.05


def campaign_cost(
    result: ModisRunResult,
    fleet_size: int = cal.MODIS_WORKER_COUNT,
    retained_months: float = 1.0,
) -> CostBreakdown:
    """Price a simulated ModisAzure campaign.

    Compute is billed for the standing fleet over the campaign window
    (ModisAzure kept ~200 instances deployed); storage for intermediate
    products retained ``retained_months``; transactions per execution.
    """
    campaign_hours = result.campaign_days * 24.0
    compute = vm_hours_cost(campaign_hours, "small") * fleet_size
    compute_tasks = sum(
        1 for t in result.tasks
        if t.kind is not TaskKind.SOURCE_DOWNLOAD and t.completed
    )
    stored_gb = compute_tasks * PRODUCT_GB_PER_TASK
    storage = storage_cost(stored_gb, retained_months)
    transactions = transaction_cost(
        result.total_executions * TRANSACTIONS_PER_EXECUTION
    )
    return CostBreakdown(
        compute=compute,
        storage=storage,
        transactions=transactions,
        bandwidth=0.0,  # intra-datacenter traffic was free
    )


def wasted_compute_cost(result: ModisRunResult) -> float:
    """Dollars burned in executions the monitor killed (Section 5.2's
    motivation for tighter timeout bounds)."""
    from repro.modis.analysis import slowdown_cost_estimate

    wasted_hours = slowdown_cost_estimate(result) / 3600.0
    return vm_hours_cost(wasted_hours, "small")
