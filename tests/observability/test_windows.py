"""Window-invariance properties of the per-minute availability fold.

The campaign fast-forward driver solves stationary windows
independently and folds each as one batch; that is only sound if
splitting a stream of observations at arbitrary window boundaries and
merging the pieces reproduces the unsplit accumulator — and hence the
identical SLO burn.  These tests pin that invariance (and the matching
property of ``Histogram.observe_batch``) over randomized splits.
"""

import numpy as np
import pytest

from repro.observability.histogram import Histogram, HistogramTally
from repro.observability.windows import (
    MinuteAvailability,
    minute_availability_for,
)


def _random_ops(rng, n_minutes, n_ops):
    minutes = rng.integers(0, n_minutes, size=n_ops)
    ok = rng.random(n_ops) < 0.9
    return minutes, ok


def _split_points(rng, n_ops, n_splits):
    cuts = np.sort(rng.integers(0, n_ops + 1, size=n_splits))
    return [0, *cuts.tolist(), n_ops]


# -- construction / ingestion ------------------------------------------------

def test_rejects_bad_horizons_and_indices():
    with pytest.raises(ValueError):
        MinuteAvailability(0)
    with pytest.raises(ValueError):
        MinuteAvailability(10, window_s=0.0)
    acc = MinuteAvailability(10)
    with pytest.raises(ValueError):
        acc.observe_batch([0, 10], [True, True])
    with pytest.raises(ValueError):
        acc.observe_batch([-1], [True])
    with pytest.raises(ValueError):
        acc.observe_batch([1, 2], [True])


def test_minute_of_clamps_into_the_horizon():
    acc = MinuteAvailability(10)
    assert acc.minute_of(0.0) == 0
    assert acc.minute_of(59.999) == 0
    assert acc.minute_of(60.0) == 1
    # Grace-drain convention: past the horizon lands in the last minute.
    assert acc.minute_of(1e9) == 9


def test_batch_fold_equals_scalar_observes():
    rng = np.random.default_rng(7)
    minutes, ok = _random_ops(rng, 30, 500)
    batch = MinuteAvailability(30)
    batch.observe_batch(minutes, ok)
    scalar = MinuteAvailability(30)
    for m, o in zip(minutes.tolist(), ok.tolist()):
        scalar.observe(m, o)
    assert np.array_equal(batch.ok, scalar.ok)
    assert np.array_equal(batch.total, scalar.total)


# -- the window-invariance property ------------------------------------------

@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_split_windows_merge_to_the_unsplit_accumulator(seed):
    """Folding the stream split at arbitrary boundaries == one fold."""
    rng = np.random.default_rng(seed)
    minutes, ok = _random_ops(rng, 60, 2000)
    whole = MinuteAvailability(60)
    whole.observe_batch(minutes, ok)

    merged = MinuteAvailability(60)
    bounds = _split_points(rng, len(minutes), n_splits=5)
    for lo, hi in zip(bounds, bounds[1:]):
        piece = MinuteAvailability(60)
        piece.observe_batch(minutes[lo:hi], ok[lo:hi])
        merged.merge(piece)

    assert np.array_equal(merged.ok, whole.ok)
    assert np.array_equal(merged.total, whole.total)
    assert merged.minutes == whole.minutes
    assert merged.bad_minutes == whole.bad_minutes
    assert merged.zero_minutes == whole.zero_minutes
    assert merged.worst_minute_availability == (
        whole.worst_minute_availability
    )
    assert merged.mean_minute_availability == (
        whole.mean_minute_availability
    )


@pytest.mark.parametrize("seed", [0, 5])
def test_slo_burn_is_invariant_to_window_boundaries(seed):
    """The availability SLO burn computed from merged split-window
    accumulators equals the unsplit evaluation exactly (integer adds
    commute; the SLO engine sees identical totals)."""
    rng = np.random.default_rng(seed)
    minutes, ok = _random_ops(rng, 45, 1500)
    whole = MinuteAvailability(45)
    whole.observe_batch(minutes, ok)

    merged = MinuteAvailability(45)
    bounds = _split_points(rng, len(minutes), n_splits=7)
    for lo, hi in zip(bounds, bounds[1:]):
        piece = MinuteAvailability(45)
        piece.observe_batch(minutes[lo:hi], ok[lo:hi])
        merged.merge(piece)

    a = whole.availability_result(0.999)
    b = merged.availability_result(0.999)
    assert a.sli == b.sli
    assert a.burn_rate == b.burn_rate
    assert a.budget_consumed == b.budget_consumed
    assert a.passed == b.passed


def test_merge_rejects_mismatched_horizons():
    acc = MinuteAvailability(10)
    with pytest.raises(ValueError):
        acc.merge(MinuteAvailability(11))
    with pytest.raises(ValueError):
        acc.merge(MinuteAvailability(10, window_s=30.0))


def test_minute_availability_for_covers_the_duration():
    acc = minute_availability_for(86400.0)
    assert acc.n_minutes == 1440
    assert minute_availability_for(61.0).n_minutes == 2
    assert minute_availability_for(0.0).n_minutes == 1


# -- the histogram half of the fold ------------------------------------------

@pytest.mark.parametrize("seed", [0, 9])
def test_histogram_batch_fold_is_window_invariant(seed):
    """``Histogram.observe_batch`` over split windows + ``merge`` gives
    the same buckets (and so the same percentiles) as one unsplit
    batch — the latency half of the fast path's batched ingestion."""
    rng = np.random.default_rng(seed)
    values = rng.lognormal(mean=-3.0, sigma=1.0, size=3000)
    whole = Histogram("lat")
    whole.observe_batch(values)

    merged = Histogram("lat")
    bounds = _split_points(rng, len(values), n_splits=6)
    for lo, hi in zip(bounds, bounds[1:]):
        piece = Histogram("lat")
        piece.observe_batch(values[lo:hi])
        merged.merge(piece)

    assert merged._counts == whole._counts
    assert merged.percentile(50) == whole.percentile(50)
    assert merged.percentile(99) == whole.percentile(99)


def test_tally_batch_matches_scalar_tally():
    rng = np.random.default_rng(3)
    values = rng.exponential(0.05, size=400)
    batch = HistogramTally("t")
    batch.observe_batch(values)
    scalar = HistogramTally("t")
    for v in values.tolist():
        scalar.observe(v)
    assert batch.count == scalar.count
    assert batch.percentile(50) == scalar.percentile(50)
    assert batch.percentile(99) == scalar.percentile(99)
