"""Serialization round-trips for the observability snapshots.

The catalog stores tracer/registry snapshots as JSON payloads; these
tests pin the round-trip contract: dict → JSON → dict restores every
aggregate exactly and every histogram bucket-for-bucket.
"""

import json

import numpy as np
import pytest

from repro.monitoring import MetricsRegistry, request_summary
from repro.observability.histogram import Histogram, HistogramTally
from repro.service.tracing import OK, RequestTrace, RequestTracer


def _json_round_trip(doc):
    return json.loads(json.dumps(doc))


def _trace(service, op, start, latency, outcome=OK, retries=0):
    return RequestTrace(
        service=service,
        op=op,
        started_at=start,
        finished_at=start + latency,
        size_mb=1.5,
        queue_wait_s=latency / 10,
        transfer_s=latency / 5,
        retries=retries,
        outcome=outcome,
    )


@pytest.fixture()
def tracer():
    tracer = RequestTracer()
    rng = np.random.default_rng(11)
    for i in range(200):
        lat = float(rng.lognormal(-3.0, 0.5))
        tracer.observe(_trace("account.blobs", "blob.download", i * 0.1, lat))
        tracer.observe_call(
            _trace(
                "account.blobs", "blob.download", i * 0.1, lat * 1.1,
                retries=i % 3,
            )
        )
    tracer.observe(
        _trace("account.queues", "queue.add", 30.0, 0.05, outcome="Timeout")
    )
    tracer.observe_batch(
        "account.tables", "table.insert",
        rng.lognormal(-4.0, 0.3, size=500), errors=7, client=True,
    )
    return tracer


def test_tracer_snapshot_round_trip(tracer):
    doc = _json_round_trip(tracer.snapshot())
    restored = RequestTracer.from_snapshot(doc)
    assert restored.total == tracer.total
    assert restored.errors == tracer.errors
    assert restored.client_total == tracer.client_total
    assert restored.client_errors == tracer.client_errors
    assert restored.retries == tracer.retries
    assert restored.per_service_op_totals() == (
        tracer.per_service_op_totals()
    )
    assert restored.client_per_op_totals() == tracer.client_per_op_totals()


def test_tracer_histograms_round_trip_bucket_for_bucket(tracer):
    doc = _json_round_trip(tracer.snapshot())
    restored = RequestTracer.from_snapshot(doc)
    for view in ("latency_histograms", "client_latency_histograms"):
        orig = getattr(tracer, view)()
        back = getattr(restored, view)()
        assert set(back) == set(orig)
        for key, hist in orig.items():
            assert back[key].to_dict() == hist.to_dict()
            for q in (50, 95, 99):
                assert back[key].percentile(q) == hist.percentile(q)


def test_snapshot_key_encoding_handles_dotted_names(tracer):
    # Service names ("account.blobs") and ops ("blob.download") both
    # contain dots; the snapshot keys must keep them separable.
    doc = tracer.snapshot()
    assert "account.blobs|blob.download" in doc["per_op"]
    restored = RequestTracer.from_snapshot(_json_round_trip(doc))
    assert ("account.blobs", "blob.download") in (
        restored.per_service_op_totals()
    )


def test_request_summary_identical_after_round_trip(tracer):
    restored = RequestTracer.from_snapshot(
        _json_round_trip(tracer.snapshot())
    )
    assert request_summary(restored) == request_summary(tracer)


def test_tracer_snapshot_omits_raw_records(tracer):
    assert len(tracer.records()) > 0
    restored = RequestTracer.from_snapshot(
        _json_round_trip(tracer.snapshot())
    )
    assert restored.records() == []
    # ... but the exact aggregates survive, which is the contract.
    assert restored.total == tracer.total


def test_histogram_tally_round_trip():
    tally = HistogramTally("lat")
    rng = np.random.default_rng(5)
    tally.observe_batch(rng.lognormal(-3.0, 1.0, size=1000))
    tally.observe(0.0)  # zero bucket
    for _ in range(4):
        tally.observe_error()
    restored = HistogramTally.from_dict(_json_round_trip(tally.to_dict()))
    assert restored.errors == 4
    assert restored.count == tally.count
    assert restored.histogram.to_dict() == tally.histogram.to_dict()
    assert restored.percentile(99) == tally.percentile(99)


def test_empty_histogram_round_trip():
    hist = Histogram("empty")
    restored = Histogram.from_dict(_json_round_trip(hist.to_dict()))
    assert restored.count == 0
    assert restored.to_dict() == hist.to_dict()


def test_registry_round_trip():
    registry = MetricsRegistry()
    registry.counter("jobs.done").increment(42)
    registry.register_gauge("queue.depth", lambda: 17.0)
    tally = registry.tally("job.latency_s")
    tally.observe_batch(np.linspace(0.01, 0.5, 100))
    tally.observe_error()
    doc = _json_round_trip(registry.to_dict())
    restored = MetricsRegistry.from_dict(doc)
    assert restored.counter("jobs.done").value == 42
    # Gauges freeze to the value they held at to_dict() time.
    assert restored.read_gauge("queue.depth") == 17.0
    assert restored.tally("job.latency_s").errors == 1
    assert restored.snapshot() == registry.snapshot()
    # The flat values block mirrors snapshot() for catalog consumers.
    assert doc["values"] == _json_round_trip(registry.snapshot())
