"""End-to-end span tracing over the real request path.

The acceptance shape: a platform run with spans enabled produces causal
trees nesting client call → attempt → server pipeline → stages →
partition/network, while the simulation's results stay bit-identical
with tracing on or off.
"""

import dataclasses

import pytest

from repro.observability.export import to_chrome_trace
from repro.workloads.blob_bench import run_blob_test
from repro.workloads.harness import build_platform


def _by_id(spans):
    return {s.span_id: s for s in spans}


def _kind_chain(span, by_id):
    kinds = []
    cursor = span
    while cursor.parent_id is not None:
        cursor = by_id[cursor.parent_id]
        kinds.append(cursor.kind)
    return kinds


def test_blob_run_emits_nested_traces_and_stays_bit_identical():
    traced = build_platform(seed=3, n_clients=2, spans=True)
    result_traced = run_blob_test(
        "download", n_clients=2, size_mb=1.0, seed=3, platform=traced
    )
    plain = build_platform(seed=3, n_clients=2)
    result_plain = run_blob_test(
        "download", n_clients=2, size_mb=1.0, seed=3, platform=plain
    )
    assert dataclasses.asdict(result_traced) == dataclasses.asdict(
        result_plain
    )
    assert plain.spans is None

    spans = traced.spans.spans()
    assert traced.spans.open_spans() == []
    by_id = _by_id(spans)
    # One trace per client call, each nesting the full path.
    traces = traced.spans.traces()
    assert len(traces) == 2
    for members in traces.values():
        kinds = {s.kind for s in members}
        assert {"client", "attempt", "server", "stage", "flow"} <= kinds
    stage = next(s for s in spans if s.name == "stage:transfer")
    assert _kind_chain(stage, by_id) == ["server", "attempt", "client"]
    flow = next(s for s in spans if s.kind == "flow")
    assert _kind_chain(flow, by_id) == ["stage", "server", "attempt", "client"]
    # Parents contain their children in time.
    for span in spans:
        if span.parent_id is not None:
            parent = by_id[span.parent_id]
            assert parent.start_s <= span.start_s + 1e-9
            assert parent.end_s >= span.end_s - 1e-9


def test_routed_op_emits_wait_and_work_spans():
    from repro.client import TableClient
    from repro.storage.table import make_entity

    platform = build_platform(seed=5, n_clients=1, spans=True)
    account = platform.account
    account.tables.create_table("t")
    client = TableClient(account.tables)
    env = platform.env

    def run():
        for i in range(8):
            yield from client.insert(
                "t", make_entity("p", f"k{i}", size_kb=8.0)
            )

    env.process(run())
    env.run()
    spans = platform.spans.spans()
    routing = [s for s in spans if s.name == "stage:routing"]
    assert len(routing) == 8
    by_id = _by_id(spans)
    # Partition observer stages land under the routing stage.
    server_side = [
        s for s in spans
        if s.parent_id is not None
        and by_id[s.parent_id].name == "stage:routing"
    ]
    assert server_side, "expected partition observer spans under routing"
    assert {s.kind for s in server_side} <= {"wait", "stage"}


def test_failed_call_closes_spans_with_error_status():
    from repro.client import BlobClient
    from repro.resilience.backoff import NO_RETRY
    from repro.storage.errors import BlobNotFoundError

    platform = build_platform(seed=1, n_clients=1, spans=True)
    blob_svc = platform.account.blobs
    blob_svc.create_container("c")
    client = BlobClient(blob_svc, platform.clients[0], retry=NO_RETRY)
    env = platform.env
    caught = []

    def run():
        try:
            yield from client.download("c", "missing")
        except BlobNotFoundError as exc:
            caught.append(exc)

    env.process(run())
    env.run()
    assert caught
    spans = platform.spans.spans()
    call = next(s for s in spans if s.kind == "client")
    assert call.status == "BlobNotFoundError"
    assert platform.spans.errors >= 1
    assert platform.spans.open_spans() == []


def test_retry_gets_a_fresh_attempt_span():
    from repro.client import TableClient
    from repro.faults import FaultInjector
    from repro.storage.table import make_entity

    platform = build_platform(seed=2, n_clients=1, spans=True)
    account = platform.account
    account.tables.create_table("t")
    server = account.tables.server_for("t", "p")
    injector = FaultInjector(env=platform.env,
                             rng=platform.streams.stream("faults"))
    injector.attach(server)
    injector.add_window(0.0, 1e9, "error_burst", 1.0)
    client = TableClient(account.tables, timeout_s=30.0)
    env = platform.env
    outcomes = []

    def run():
        _r, outcome = yield from client.insert_measured(
            "t", make_entity("p", "k", size_kb=1.0)
        )
        outcomes.append(outcome)

    env.process(run())
    env.run()
    assert outcomes and not outcomes[0].ok
    attempts = [s for s in platform.spans.spans() if s.kind == "attempt"]
    assert len(attempts) == outcomes[0].retries + 1
    assert all(a.finished for a in attempts)


def test_chrome_export_of_platform_run_passes_schema_check(tmp_path):
    import json
    import subprocess
    import sys
    from pathlib import Path

    from repro.observability.export import write_chrome_trace

    platform = build_platform(seed=3, n_clients=2, spans=True)
    run_blob_test("download", n_clients=2, size_mb=1.0, seed=3,
                  platform=platform)
    path = write_chrome_trace(tmp_path / "t.json", platform.spans.spans())
    json.loads(path.read_text())  # valid JSON document
    repo = Path(__file__).resolve().parents[2]
    proc = subprocess.run(
        [sys.executable, str(repo / "tools" / "check_trace_schema.py"),
         str(path)],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert "trace schema OK" in proc.stdout


def test_hedged_reads_get_parallel_attempt_lanes():
    from repro.client import BlobClient
    from repro.faults import FaultInjector
    from repro.resilience.backoff import NO_RETRY
    from repro.resilience.hedging import HedgePolicy

    platform = build_platform(seed=7, n_clients=1, spans=True)
    blob_svc = platform.account.blobs
    blob_svc.create_container("c")
    blob_svc.seed_blob("c", "hot", 2.0)
    injector = FaultInjector(platform.env, platform.streams.stream("faults"))
    injector.attach(blob_svc)
    injector.add_window(0.0, 1e9, "latency_spike", 1.5)
    hedge = HedgePolicy(percentile=90.0, default_delay_s=0.2)
    client = BlobClient(blob_svc, platform.clients[0], retry=NO_RETRY,
                        hedge=hedge)
    env = platform.env

    def reader():
        for _ in range(30):
            yield from client.download("c", "hot")
            yield env.timeout(1.0)

    env.process(reader())
    env.run()
    assert hedge.launched > 0
    spans = platform.spans.spans()
    attempts = [s for s in spans if s.kind == "attempt"]
    assert len(attempts) == 30 + hedge.launched
    # Hedge losers are torn down and marked, not leaked.
    assert platform.spans.open_spans() == []
    doc = to_chrome_trace(spans)
    # Some trace has two attempt lanes (primary + hedge leg).
    lanes_per_trace = {}
    for event in doc["traceEvents"]:
        if event["cat"] == "attempt":
            lanes_per_trace.setdefault(event["pid"], set()).add(event["tid"])
    assert any(len(lanes) == 2 for lanes in lanes_per_trace.values())
