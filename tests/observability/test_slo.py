"""Tests for the SLO engine: budgets, burn rates, histogram evaluation."""

import pytest

from repro.observability.histogram import Histogram
from repro.observability.slo import (
    SLO,
    availability_slo,
    evaluate_slo,
    evaluate_slos,
    latency_slo,
)


def test_slo_validation():
    with pytest.raises(ValueError):
        SLO(name="x", kind="availability", target=1.0)
    with pytest.raises(ValueError):
        SLO(name="x", kind="availability", target=0.0)
    with pytest.raises(ValueError):
        SLO(name="x", kind="latency", target=0.9)  # missing threshold
    with pytest.raises(ValueError):
        SLO(name="x", kind="made-up", target=0.9)
    assert availability_slo(0.999).error_budget == pytest.approx(0.001)
    assert latency_slo(0.5, 0.95).name == "latency<500ms"


def test_availability_budget_and_burn_rate():
    result = evaluate_slo(availability_slo(0.99), total=1000, errors=5)
    assert result.sli == pytest.approx(0.995)
    assert result.budget_consumed == pytest.approx(0.5)
    assert result.budget_remaining == pytest.approx(0.5)
    assert result.burn_rate == pytest.approx(0.5)
    assert result.passed


def test_blown_budget():
    result = evaluate_slo(availability_slo(0.99), total=100, errors=3)
    assert result.budget_consumed == pytest.approx(3.0)
    assert result.budget_remaining == 0.0
    assert not result.passed


def test_empty_window_is_vacuously_good():
    result = evaluate_slo(availability_slo(0.99), total=0)
    assert result.sli == 1.0
    assert result.passed
    with pytest.raises(ValueError):
        evaluate_slo(availability_slo(0.99), total=10, errors=11)


def test_latency_slo_counts_failures_as_bad():
    hist = Histogram()
    hist.extend([0.1] * 90)  # successes, all fast
    slo = latency_slo(0.2, target=0.9)
    result = evaluate_slo(slo, total=100, errors=10, histogram=hist)
    # 90 fast successes of 100 total: exactly at target.
    assert result.good == 90
    assert result.passed
    worse = evaluate_slo(slo, total=100, errors=20, histogram=hist)
    assert worse.good == 80  # clamped to the success count
    assert not worse.passed


def test_latency_slo_fraction_from_histogram():
    hist = Histogram()
    hist.extend([0.05] * 950 + [2.0] * 50)
    result = evaluate_slo(
        latency_slo(0.5, target=0.99), total=1000, errors=0, histogram=hist
    )
    assert result.sli == pytest.approx(0.95, rel=0.01)
    assert not result.passed
    assert result.burn_rate == pytest.approx(5.0, rel=0.1)


def test_latency_slo_without_histogram_is_all_bad():
    result = evaluate_slo(latency_slo(0.5, 0.95), total=10, errors=0)
    assert result.sli == 0.0
    assert not result.passed


def test_report_render_and_lookup():
    hist = Histogram()
    hist.extend([0.01] * 100)
    report = evaluate_slos(
        [availability_slo(0.99), latency_slo(0.1, 0.95)],
        total=100,
        errors=0,
        histogram=hist,
        title="unit window",
    )
    assert report.passed
    assert report.worst_burn_rate == pytest.approx(0.0)
    assert report.result("availability").sli == 1.0
    rendered = report.render()
    assert "unit window" in rendered
    assert "burn rate" in rendered and "PASS" in rendered
    with pytest.raises(KeyError):
        report.result("ghost")
