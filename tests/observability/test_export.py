"""Tests for the span exporters: Chrome trace, JSONL, waterfall."""

import json

import pytest

from repro.observability.export import (
    spans_from_jsonl,
    to_chrome_trace,
    to_jsonl,
    waterfall,
    write_chrome_trace,
    write_jsonl,
)
from repro.observability.spans import SpanTracer


def _sample_tracer():
    tracer = SpanTracer()
    call = tracer.start("call:op", "client", 0.0, op="op")
    attempt = tracer.start("attempt:op #0", "attempt", 0.0,
                           parent=call.context)
    server = tracer.start("svc.op", "server", 0.1, parent=attempt.context)
    tracer.emit("stage:work", "stage", 0.1, 0.4, parent=server.context)
    tracer.finish(server, 0.5)
    tracer.finish(attempt, 0.5)
    tracer.finish(call, 0.6)
    return tracer


def test_chrome_trace_schema():
    doc = to_chrome_trace(_sample_tracer().spans())
    events = doc["traceEvents"]
    assert len(events) == 4
    assert doc["metadata"]["spans_open_skipped"] == 0
    for event in events:
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert event["pid"] == event["args"]["trace_id"]
    call = next(e for e in events if e["cat"] == "client")
    assert call["ts"] == pytest.approx(0.0)
    assert call["dur"] == pytest.approx(0.6e6)  # microseconds


def test_chrome_trace_skips_open_spans():
    tracer = _sample_tracer()
    tracer.start("still-open", "client", 1.0)
    doc = to_chrome_trace(tracer.spans())
    assert len(doc["traceEvents"]) == 4
    assert doc["metadata"]["spans_open_skipped"] == 1


def test_chrome_trace_lanes_separate_attempts():
    """Hedge legs overlap in time; each attempt subtree gets its own
    lane (tid) so the viewer renders them side by side."""
    tracer = SpanTracer()
    call = tracer.start("call:get", "client", 0.0)
    lanes = set()
    for i in range(2):
        attempt = tracer.start(f"attempt:get #{i}", "attempt", 0.1 * i,
                               parent=call.context)
        tracer.emit("svc.get", "server", 0.1 * i, 0.5, parent=attempt.context)
        tracer.finish(attempt, 0.5)
    tracer.finish(call, 0.5)
    events = to_chrome_trace(tracer.spans())["traceEvents"]
    by_name = {e["name"]: e for e in events}
    assert by_name["attempt:get #0"]["tid"] != by_name["attempt:get #1"]["tid"]
    for i in range(2):
        attempt = by_name[f"attempt:get #{i}"]
        servers = [e for e in events
                   if e["cat"] == "server"
                   and e["args"]["parent_id"] == attempt["args"]["span_id"]]
        assert servers and all(s["tid"] == attempt["tid"] for s in servers)
    lanes = {e["tid"] for e in events}
    assert len(lanes) == 3  # call lane + one per attempt


def test_write_chrome_trace_is_valid_json(tmp_path):
    path = write_chrome_trace(tmp_path / "t.json", _sample_tracer().spans())
    loaded = json.loads(path.read_text())
    assert loaded["displayTimeUnit"] == "ms"
    assert len(loaded["traceEvents"]) == 4


def test_jsonl_round_trip(tmp_path):
    tracer = _sample_tracer()
    tracer.start("open-span", "client", 2.0)  # open spans survive JSONL
    path = write_jsonl(tmp_path / "spans.jsonl", tracer.spans())
    restored = spans_from_jsonl(path.read_text())
    assert len(restored) == len(tracer.spans())
    for orig, back in zip(tracer.spans(), restored):
        assert back.name == orig.name
        assert back.kind == orig.kind
        assert back.span_id == orig.span_id
        assert back.parent_id == orig.parent_id
        assert back.trace_id == orig.trace_id
        assert back.start_s == orig.start_s
        assert back.end_s == orig.end_s
        assert back.status == orig.status


def test_jsonl_lines_are_parseable():
    for line in to_jsonl(_sample_tracer().spans()):
        record = json.loads(line)
        assert "span_id" in record and "start_s" in record


def test_waterfall_renders_tree_depth_and_timing():
    out = waterfall(_sample_tracer().spans())
    lines = out.splitlines()
    assert "trace 1" in lines[0]
    assert lines[1].startswith("call:op")
    assert "  attempt:op #0" in lines[2]
    assert "      stage:work" in lines[4]
    assert "+300.000ms" in lines[4]


def test_waterfall_marks_errors_and_open_spans():
    tracer = SpanTracer()
    root = tracer.start("call", "client", 0.0)
    tracer.emit("bad", "stage", 0.0, 0.1, parent=root.context,
                status="TimeoutError")
    out = waterfall(tracer.spans())
    assert "!TimeoutError" in out
    assert "…open" in out  # the root is still open


def test_waterfall_empty_and_missing_trace():
    assert waterfall([]) == "(no spans)"
    tracer = _sample_tracer()
    assert "no spans in trace 99" in waterfall(tracer.spans(), trace_id=99)
