"""Tests for the streaming histogram: accuracy, merging, round-trips."""

import numpy as np
import pytest

from repro.observability.histogram import (
    Histogram,
    HistogramTally,
    merge_histograms,
)


def test_exact_aggregates():
    hist = Histogram("t")
    for v in (0.1, 0.2, 0.4):
        hist.observe(v)
    assert hist.count == 3
    assert hist.total == pytest.approx(0.7)
    assert hist.mean == pytest.approx(0.7 / 3)
    assert hist.minimum == pytest.approx(0.1)
    assert hist.maximum == pytest.approx(0.4)
    assert len(hist) == 3


def test_percentiles_within_relative_error():
    rng = np.random.default_rng(7)
    values = rng.lognormal(mean=-2.0, sigma=1.0, size=5000)
    hist = Histogram("lat")
    hist.extend(values)
    err = hist.relative_error
    for q in (50, 90, 95, 99):
        exact = float(np.percentile(values, q))
        approx = hist.percentile(q)
        assert abs(approx - exact) / exact <= err + 0.01, (q, exact, approx)


def test_percentile_extremes_clamp_to_observed():
    hist = Histogram()
    hist.extend([0.25, 0.5, 1.0])
    assert hist.percentile(0) == pytest.approx(0.25)
    assert hist.percentile(100) == pytest.approx(1.0)


def test_zero_and_subresolution_values():
    hist = Histogram(min_value=1e-3)
    hist.observe(0.0)
    hist.observe(-1.0)  # clamped into the zero bucket
    hist.observe(1e-6)
    hist.observe(0.5)
    assert hist.count == 4
    assert hist.percentile(25) == 0.0  # negatives floor at zero
    assert hist.fraction_below(0.0) == pytest.approx(0.5)


def test_merge_matches_union():
    rng = np.random.default_rng(3)
    a_vals = rng.exponential(0.1, size=400)
    b_vals = rng.exponential(0.5, size=600)
    a, b = Histogram("a"), Histogram("b")
    a.extend(a_vals)
    b.extend(b_vals)
    merged = merge_histograms([a, b], name="union")
    union = Histogram("direct")
    union.extend(np.concatenate([a_vals, b_vals]))
    assert merged.count == 1000
    assert merged.total == pytest.approx(union.total)
    for q in (50, 95, 99):
        assert merged.percentile(q) == pytest.approx(union.percentile(q))
    # inputs untouched
    assert a.count == 400 and b.count == 600


def test_merge_rejects_mismatched_shapes():
    with pytest.raises(ValueError):
        Histogram(growth=1.04).merge(Histogram(growth=1.1))


def test_fraction_below():
    hist = Histogram()
    hist.extend([0.1] * 90 + [10.0] * 10)
    assert hist.fraction_below(1.0) == pytest.approx(0.9)
    assert hist.fraction_below(100.0) == pytest.approx(1.0)


def test_dict_round_trip():
    hist = Histogram("rt")
    hist.extend([0.01, 0.2, 3.0, 0.0])
    clone = Histogram.from_dict(hist.to_dict())
    assert clone.count == hist.count
    assert clone.total == pytest.approx(hist.total)
    assert clone.percentile(50) == pytest.approx(hist.percentile(50))
    assert clone.minimum == hist.minimum and clone.maximum == hist.maximum


def test_empty_histogram_raises():
    hist = Histogram("empty")
    for call in (lambda: hist.mean, lambda: hist.percentile(50),
                 lambda: hist.fraction_below(1.0)):
        with pytest.raises(ValueError):
            call()


def test_validation():
    with pytest.raises(ValueError):
        Histogram(min_value=0.0)
    with pytest.raises(ValueError):
        Histogram(growth=1.0)
    hist = Histogram()
    hist.observe(1.0)
    with pytest.raises(ValueError):
        hist.percentile(101)


def test_histogram_tally_surface():
    tally = HistogramTally("lat")
    tally.extend([0.1, 0.2, 0.3])
    assert tally.count == 3 and len(tally) == 3
    assert tally.mean == pytest.approx(0.2)
    assert tally.percentile(50) == pytest.approx(0.2, rel=0.03)
    assert tally.minimum == pytest.approx(0.1)
    assert tally.maximum == pytest.approx(0.3)
    assert tally.errors == 0
    tally.observe_error()
    assert tally.errors == 1
    other = HistogramTally("lat")
    other.observe(0.4)
    other.observe_error()
    tally.merge(other)
    assert tally.count == 4 and tally.errors == 2
