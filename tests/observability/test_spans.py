"""Tests for the span tracer: lifecycle, binding semantics, retention."""

import pytest

from repro.observability.spans import ABANDONED, SpanTracer
from repro.simcore import Environment


def test_span_lifecycle_and_context():
    env = Environment()
    tracer = SpanTracer()
    root = tracer.start("call:op", "client", env.now, op="op")
    assert root.parent_id is None
    assert root.trace_id == 1
    assert not root.finished
    child = tracer.start("attempt", "attempt", env.now, parent=root.context)
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    tracer.finish(child, 1.5)
    tracer.finish(root, 2.0)
    assert child.duration_s == pytest.approx(1.5)
    assert root.ok and child.ok
    assert tracer.started == 2 and tracer.finished == 2
    # finish is idempotent (abandoned generators may close twice).
    tracer.finish(root, 9.0, "late")
    assert root.end_s == 2.0 and root.status == "ok"


def test_emit_records_complete_span():
    tracer = SpanTracer()
    span = tracer.emit("wait", "wait", 1.0, 1.25, status="ok", stage="cpu")
    assert span.finished
    assert span.duration_s == pytest.approx(0.25)
    assert span.attributes["stage"] == "cpu"


def test_new_traces_get_fresh_ids():
    tracer = SpanTracer()
    a = tracer.start("a", "client", 0.0)
    b = tracer.start("b", "client", 0.0)
    assert a.trace_id != b.trace_id
    assert tracer.traces().keys() == {a.trace_id, b.trace_id}
    assert tracer.trace(a.trace_id) == [a]


def test_open_spans_and_clear():
    tracer = SpanTracer()
    span = tracer.start("a", "client", 0.0)
    assert tracer.open_spans() == [span]
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.started == 0 and tracer.current is None


def test_capacity_trims_oldest_but_counts_stay_exact():
    tracer = SpanTracer(capacity=10)
    for i in range(40):
        tracer.emit(f"s{i}", "stage", float(i), float(i) + 0.5)
    assert len(tracer) <= 10 + 10 // 4
    assert tracer.started == 40
    assert tracer.dropped >= 40 - (10 + 10 // 4)
    # The newest spans win.
    assert tracer.spans()[-1].name == "s39"
    with pytest.raises(ValueError):
        SpanTracer(capacity=0)


def test_bind_sets_ambient_context_per_advance():
    """tracer.current is the bound span's context during each advance of
    the wrapped generator — and not outside it, even when two bound
    processes interleave."""
    env = Environment()
    tracer = SpanTracer()
    seen = {}

    def proc(name, delay):
        seen[(name, "first")] = tracer.current
        yield env.timeout(delay)
        seen[(name, "second")] = tracer.current

    spans = {}
    for name, delay in (("a", 1.0), ("b", 0.5)):
        span = tracer.start(name, "attempt", env.now)
        spans[name] = span
        env.process(tracer.bind(env, proc(name, delay), span))
    env.run()
    for name in ("a", "b"):
        assert seen[(name, "first")] == spans[name].context
        assert seen[(name, "second")] == spans[name].context
    assert tracer.current is None
    assert spans["a"].end_s == pytest.approx(1.0)
    assert spans["b"].end_s == pytest.approx(0.5)


def test_bind_finishes_span_with_exception_status():
    env = Environment()
    tracer = SpanTracer()

    def boom():
        yield env.timeout(1.0)
        raise RuntimeError("nope")

    span = tracer.start("x", "attempt", env.now)
    proc = env.process(tracer.bind(env, boom(), span))
    proc.defuse()
    env.run()
    assert span.finished
    assert span.status == "RuntimeError"
    assert tracer.errors == 1


def test_bind_marks_torn_down_generator_abandoned():
    env = Environment()
    tracer = SpanTracer()

    def forever():
        while True:
            yield env.timeout(1.0)

    span = tracer.start("loser", "attempt", env.now)
    wrapped = tracer.bind(env, forever(), span)
    next(wrapped)  # start it
    wrapped.close()  # hedging loser / orphan teardown
    assert span.finished
    assert span.status == ABANDONED


def test_bind_returns_inner_value_and_passes_events_through():
    env = Environment()
    tracer = SpanTracer()

    def inner():
        yield env.timeout(2.0)
        return 42

    span = tracer.start("call", "attempt", env.now)
    result = []

    def driver():
        value = yield from tracer.bind(env, inner(), span)
        result.append(value)

    env.process(driver())
    env.run()
    assert result == [42]
    assert span.end_s == pytest.approx(2.0)
