"""``Histogram.observe_batch`` is bucket-for-bucket the scalar path.

The cohort driver folds thousands of latencies per kernel event through
one vectorized call; percentiles must be *identical* to having observed
each sample in turn (same log-bucket arithmetic), with only the running
sum allowed to differ in the last ulps (pairwise vs sequential
summation).
"""

import numpy as np

from repro.observability.histogram import Histogram, HistogramTally
from repro.service.tracing import RequestTracer


def _samples(seed, n=5000):
    rng = np.random.default_rng(seed)
    # A hostile mix: zeros, negatives, sub-resolution, the min_value
    # boundary exactly, and a heavy tail.
    parts = [
        rng.exponential(0.05, size=n),
        np.zeros(5),
        np.full(3, -1e-3),
        np.full(4, 1e-9),
        np.full(2, 1e-6),  # == min_value exactly: bucket 0, both paths
        rng.pareto(1.5, size=50) + 1.0,
    ]
    return np.concatenate(parts)


def test_batch_bucket_counts_identical_to_scalar():
    values = _samples(1)
    scalar, batch = Histogram("s"), Histogram("b")
    for v in values:
        scalar.observe(float(v))
    batch.observe_batch(values)
    assert batch._counts == scalar._counts
    assert batch._zero == scalar._zero
    assert batch.count == scalar.count
    assert batch.minimum == scalar.minimum
    assert batch.maximum == scalar.maximum
    assert abs(batch.total - scalar.total) < 1e-9 * max(1.0, abs(scalar.total))


def test_batch_percentiles_identical_to_scalar():
    values = _samples(2)
    scalar, batch = Histogram("s"), Histogram("b")
    for v in values:
        scalar.observe(float(v))
    batch.observe_batch(values)
    for q in (0, 1, 25, 50, 90, 99, 99.9, 100):
        assert batch.percentile(q) == scalar.percentile(q)


def test_batch_interleaves_with_scalar_ingestion():
    hist = Histogram("mixed")
    hist.observe(0.01)
    hist.observe_batch([0.02, 0.03])
    hist.observe(0.04)
    assert hist.count == 4
    assert hist.minimum == 0.01 and hist.maximum == 0.04


def test_empty_and_reshaped_batches():
    hist = Histogram("e")
    hist.observe_batch([])
    assert hist.count == 0
    hist.observe_batch(np.array([[0.01, 0.02], [0.03, 0.04]]))
    assert hist.count == 4


def test_tally_batch_delegates():
    tally = HistogramTally("t")
    tally.observe_batch([0.1, 0.2, 0.3])
    assert tally.count == 3


# -- RequestTracer.observe_batch -------------------------------------------


def test_tracer_batch_folds_client_view():
    tracer = RequestTracer()
    lat = np.array([0.01, 0.02, 0.05])
    tracer.observe_batch(
        "account.tables", "table.insert", lat, errors=2, client=True
    )
    assert tracer.client_total == 5
    assert tracer.client_errors == 2
    agg = tracer.client_per_op_totals()[("account.tables", "table.insert")]
    assert agg["count"] == 5 and agg["errors"] == 2
    hist = tracer.client_latency_histograms()[("account.tables", "table.insert")]
    assert hist.count == 3  # errors are not histogrammed
    # Aggregate-only: no raw records appended.
    assert tracer.records() == [] and tracer.client_calls() == []


def test_tracer_batch_folds_server_view_with_sums():
    tracer = RequestTracer()
    tracer.observe_batch(
        "account.blobs",
        "blob.download",
        [0.1, 0.3],
        queue_waits=[0.01, 0.02],
        transfers=[0.05, 0.15],
        sizes_mb=[1.0, 2.0],
        errors=1,
    )
    assert tracer.total == 3 and tracer.errors == 1
    agg = tracer.per_service_op_totals()[("account.blobs", "blob.download")]
    assert agg["count"] == 3
    assert abs(agg["latency_s"] - 0.4) < 1e-12
    assert abs(agg["queue_wait_s"] - 0.03) < 1e-12
    assert abs(agg["transfer_s"] - 0.2) < 1e-12
    assert abs(agg["size_mb"] - 3.0) < 1e-12


def test_tracer_batch_matches_scalar_fold():
    """A batch fold must leave the same aggregates and histogram as the
    equivalent sequence of observe_call()s (records aside)."""
    from repro.service.tracing import RequestTrace

    lat = [0.011, 0.025, 0.04, 0.033]
    scalar, batch = RequestTracer(), RequestTracer()
    for latency in lat:
        scalar.observe_call(
            RequestTrace(
                service="svc", op="op", started_at=0.0, finished_at=latency
            )
        )
    batch.observe_batch("svc", "op", lat, client=True)
    assert batch.client_total == scalar.client_total
    key = ("svc", "op")
    assert (
        batch.client_latency_histograms()[key]._counts
        == scalar.client_latency_histograms()[key]._counts
    )
    for q in (50, 99):
        assert batch.client_latency_histograms()[key].percentile(
            q
        ) == scalar.client_latency_histograms()[key].percentile(q)


def test_tracer_batch_disabled_is_a_noop():
    tracer = RequestTracer(enabled=False)
    tracer.observe_batch("svc", "op", [0.1], client=True)
    tracer.observe_batch("svc", "op", [0.1])
    assert tracer.total == 0 and tracer.client_total == 0


def test_tracer_batch_empty_is_a_noop():
    tracer = RequestTracer()
    tracer.observe_batch("svc", "op", [], errors=0, client=True)
    assert tracer.client_total == 0 and tracer._client_per_op == {}
