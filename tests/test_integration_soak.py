"""Soak test: every subsystem running together under fault pressure.

One simulated platform hosts, simultaneously:

* a blob-backed producer/consumer pipeline through a queue,
* a table-status workload,
* TCP endpoint probes between placed VMs,
* background traffic,
* a mid-run 503 storm AND a latency spike,
* an autoscaling-style fleet change (workers join late).

The assertions are conservation and consistency invariants -- exactly
the properties long-running cloud apps rely on.
"""

import pytest

from repro.client import BlobClient, QueueClient, TableClient, TcpEndpointPair
from repro.resilience.backoff import RetryPolicy
from repro.cluster import SpilloverPlacement, VMInstance, make_nodes
from repro.cluster.sizes import get_size
from repro.faults import FaultInjector
from repro.network import LatencyModel
from repro.simcore import RandomStreams
from repro.storage.table import make_entity
from repro.workloads import build_platform

pytestmark = pytest.mark.slow


def test_full_platform_soak():
    platform = build_platform(seed=99, n_clients=32, racks=8,
                              hosts_per_rack=8)
    env, account = platform.env, platform.account
    account.blobs.create_container("soak")
    account.tables.create_table("status")
    account.queues.create_queue("jobs")

    injector = FaultInjector(env, platform.streams.stream("soak.faults"))
    injector.attach(account.tables.server_for("status", "pk"))
    injector.attach(account.queues.server_for("jobs"))
    injector.add_window(300.0, 200.0, "server_busy_storm", magnitude=0.3)
    injector.add_window(700.0, 150.0, "latency_spike", magnitude=0.5)

    state = {
        "produced": 0, "consumed": 0, "uploads": 0, "downloads": 0,
        "status_rows": 0, "pings": 0, "errors": 0,
    }
    retry = RetryPolicy(max_retries=8, backoff_s=0.5)

    def producer(env, idx):
        queue = QueueClient(account.queues, retry=retry)
        blob = BlobClient(account.blobs, platform.clients[idx])
        for i in range(15):
            name = f"obj-{idx}-{i}"
            yield from blob.upload("soak", name, 2.0)
            state["uploads"] += 1
            yield from queue.add("jobs", name)
            state["produced"] += 1
            yield env.timeout(8.0)

    def consumer(env, idx, start_delay=0.0):
        yield env.timeout(start_delay)
        queue = QueueClient(account.queues, retry=retry)
        table = TableClient(account.tables, retry=retry)
        blob = BlobClient(account.blobs, platform.clients[16 + idx])
        while state["consumed"] < state["produced"] or env.now < 1300.0:
            try:
                msg = yield from queue.receive(
                    "jobs", visibility_timeout_s=300.0
                )
            except Exception:  # noqa: BLE001 - empty queue
                yield env.timeout(5.0)
                continue
            try:
                yield from blob.download("soak", msg.payload)
                state["downloads"] += 1
                yield from table.insert(
                    "status", make_entity("pk", f"done-{msg.id}")
                )
                state["status_rows"] += 1
                yield from queue.delete("jobs", msg, msg.pop_receipt)
                state["consumed"] += 1
            except Exception:  # noqa: BLE001 - storms leak through retries
                state["errors"] += 1
                yield from queue.delete("jobs", msg, msg.pop_receipt)
                yield from queue.add("jobs", msg.payload)

    # TCP probes between placed VMs, sharing the same network.
    nodes = make_nodes(platform.datacenter)
    placement = SpilloverPlacement(
        nodes, platform.streams.stream("soak.place")
    )
    vm_a = VMInstance("worker", get_size("small"), 0)
    vm_b = VMInstance("worker", get_size("small"), 0)
    placement.place(vm_a)
    placement.place(vm_b)
    pair = TcpEndpointPair(
        platform.network, platform.datacenter,
        LatencyModel(platform.streams.stream("soak.lat")), vm_a, vm_b,
    )

    def prober(env):
        while env.now < 1200.0:
            rtt = yield from pair.ping()
            assert 0 < rtt < 0.5
            state["pings"] += 1
            yield env.timeout(20.0)

    for idx in range(8):
        env.process(producer(env, idx))
    for idx in range(6):
        env.process(consumer(env, idx))
    # Late fleet expansion: four more consumers join mid-run.
    for idx in range(6, 10):
        env.process(consumer(env, idx, start_delay=600.0))
    env.process(prober(env))
    env.run(until=3000.0)

    # -- conservation invariants --------------------------------------------
    assert state["produced"] == 8 * 15
    assert state["uploads"] == state["produced"]
    assert state["consumed"] == state["produced"]
    assert state["status_rows"] >= state["consumed"]
    assert account.queues.queue_length("jobs") == 0
    assert account.blobs.blob_count("soak") == state["uploads"]
    assert account.tables.entity_count("status") == state["status_rows"]
    assert state["pings"] >= 50
    # The storm had to actually fire for this soak to mean anything.
    assert injector.stats.rejections + injector.stats.delays_applied > 0
    # And the platform is quiescent: no leaked flows or server work.
    assert platform.network.active_count == 0
    for server in account.tables._servers.values():
        assert server.active_requests == 0
