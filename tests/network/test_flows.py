"""Unit tests for the event-driven flow transfer engine."""

import pytest

from repro.network import FlowNetwork, Link
from repro.simcore import Environment


def _run_transfer(env, net, links, size, cap=None, results=None, tag=None):
    def proc(env):
        flow = net.transfer(links, size, cap=cap, label=tag or "t")
        yield flow.done
        if results is not None:
            results.append((tag, env.now))

    return env.process(proc(env))


def test_single_flow_duration_is_size_over_capacity():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 10.0)
    results = []
    _run_transfer(env, net, [link], 100.0, results=results, tag="f")
    env.run()
    assert results == [("f", pytest.approx(10.0))]


def test_flow_cap_binds_below_link():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    results = []
    _run_transfer(env, net, [link], 50.0, cap=5.0, results=results, tag="f")
    env.run()
    assert results == [("f", pytest.approx(10.0))]


def test_two_flows_share_then_speed_up():
    # Two equal flows on a 10 MB/s link: 100 MB each.  They share at 5
    # until t=20 when both finish together.
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 10.0)
    results = []
    _run_transfer(env, net, [link], 100.0, results=results, tag="a")
    _run_transfer(env, net, [link], 100.0, results=results, tag="b")
    env.run()
    assert [t for _, t in results] == [pytest.approx(20.0)] * 2


def test_short_flow_finishes_then_long_flow_accelerates():
    # a=30 MB, b=90 MB on a 10 MB/s link.  Share at 5 until a finishes at
    # t=6; b then has 60 MB left at 10 MB/s -> done at t=12.
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 10.0)
    results = []
    _run_transfer(env, net, [link], 30.0, results=results, tag="a")
    _run_transfer(env, net, [link], 90.0, results=results, tag="b")
    env.run()
    assert dict(results) == {
        "a": pytest.approx(6.0),
        "b": pytest.approx(12.0),
    }


def test_late_arrival_slows_existing_flow():
    # a starts alone (10 MB/s); b arrives at t=4.  a: 100 MB -> 40 MB done
    # by t=4, 60 left shared at 5 -> 12 more seconds -> t=16.
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 10.0)
    results = []

    def late(env):
        yield env.timeout(4.0)
        flow = net.transfer([link], 1000.0, label="b")
        yield flow.done

    _run_transfer(env, net, [link], 100.0, results=results, tag="a")
    env.process(late(env))
    env.run(until=50.0)
    assert dict(results)["a"] == pytest.approx(16.0)


def test_abort_releases_bandwidth():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 10.0)
    results = []

    def victim(env):
        flow = net.transfer([link], 1000.0, label="victim")
        yield env.timeout(2.0)
        net.abort(flow)

    env.process(victim(env))
    _run_transfer(env, net, [link], 100.0, results=results, tag="survivor")
    env.run()
    # survivor: 2 s at 5 MB/s (10 MB) then 90 MB at 10 MB/s -> t=11.
    assert dict(results)["survivor"] == pytest.approx(11.0)


def test_dynamic_cap_depends_on_concurrency():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 1000.0)
    # Front-end curve: each flow capped at 20/n.
    net.add_cap_hook(lambda flow, n: 20.0 / n)
    results = []
    _run_transfer(env, net, [link], 10.0, results=results, tag="a")
    _run_transfer(env, net, [link], 10.0, results=results, tag="b")
    env.run()
    # Both capped at 10 MB/s while together (until t=1.0 when both finish).
    assert [t for _, t in results] == [pytest.approx(1.0)] * 2


def test_transfer_validation():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 1.0)
    with pytest.raises(ValueError):
        net.transfer([link], 0.0)
    with pytest.raises(ValueError):
        net.transfer([], 5.0)


def test_many_flows_conservation():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 7.0)
    results = []
    sizes = [10.0, 20.0, 5.0, 40.0, 25.0]
    for i, size in enumerate(sizes):
        _run_transfer(env, net, [link], size, results=results, tag=i)
    env.run()
    # Work conservation: the link runs at capacity until the final byte.
    assert max(t for _, t in results) == pytest.approx(sum(sizes) / 7.0)
    assert net.active_count == 0
    assert net.completed_count == len(sizes)


def test_completed_count_and_snapshot():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 10.0)
    flow = net.transfer([link], 10.0, label="x")
    assert "x#" in list(net.snapshot().keys())[0]
    env.run()
    assert flow.done.processed
    assert net.completed_count == 1
