"""The incremental allocator vs the batch oracle, plus timer hygiene.

The contract under test is *exact* (bitwise) agreement: after any
sequence of arrivals, removals, and cap changes, ``FairShareState``
must produce float-for-float the same rates as a from-scratch
``max_min_fair`` over the surviving flow set — that is what makes the
engine swap invisible to the golden experiment outputs.
"""

import math
import random

import pytest

from repro.network import FairShareState, FlowNetwork, Link, max_min_fair
from repro.network.fairshare import verify_allocation
from repro.simcore import Environment


# -- property test: randomized mutation sequences -------------------------

def _random_topology(rng):
    """A pool of links with varied capacities (several natural
    components once flows pick disjoint subsets)."""
    n_links = rng.randint(1, 8)
    return [
        Link(f"l{i}", rng.choice([10.0, 40.0, 100.0, 125.0, 500.0]))
        for i in range(n_links)
    ]


def _random_cap(rng):
    return rng.choice(
        [None, None, None, 12.5, 40.0, rng.uniform(0.5, 200.0), 0.0]
    )


def _check_exact(state, specs):
    state.recompute()
    expected = max_min_fair(specs.values())
    assert state.rates == expected, (
        "incremental allocation diverged from batch oracle"
    )
    verify_allocation(specs.values(), state.rates)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 17])
def test_incremental_matches_batch_after_every_mutation(seed):
    rng = random.Random(seed)
    links = _random_topology(rng)
    state = FairShareState()
    specs = {}  # fid -> (fid, links, cap), the batch oracle's input
    next_fid = 0

    for _ in range(120):
        roll = rng.random()
        if not specs or roll < 0.55:
            # arrival: random path over the link pool (or linkless+cap)
            if rng.random() < 0.1:
                path, cap = (), rng.uniform(0.5, 50.0)
            else:
                path = tuple(
                    rng.sample(links, rng.randint(1, min(3, len(links))))
                )
                cap = _random_cap(rng)
            fid = f"f{next_fid}"
            next_fid += 1
            specs[fid] = (fid, path, cap)
            state.add_flow(fid, path, cap)
        elif roll < 0.8:
            fid = rng.choice(sorted(specs))
            del specs[fid]
            state.remove_flow(fid)
        else:
            fid = rng.choice(sorted(specs))
            old = specs[fid]
            cap = _random_cap(rng)
            if not old[1] and cap is None:
                cap = rng.uniform(0.5, 50.0)  # linkless + uncapped: unbounded
            specs[fid] = (fid, old[1], cap)
            state.set_cap(fid, cap)
        _check_exact(state, specs)


@pytest.mark.parametrize("seed", [5, 11])
def test_incremental_matches_batch_shared_links(seed):
    """Heavily shared small topologies: one big component, lots of
    freeze interleavings."""
    rng = random.Random(seed)
    links = [Link("a", 100.0), Link("b", 40.0)]
    state = FairShareState()
    specs = {}
    for i in range(60):
        fid = f"f{i}"
        path = tuple(rng.sample(links, rng.randint(1, 2)))
        cap = _random_cap(rng)
        specs[fid] = (fid, path, cap)
        state.add_flow(fid, path, cap)
        if specs and rng.random() < 0.3:
            victim = rng.choice(sorted(specs))
            del specs[victim]
            state.remove_flow(victim)
        _check_exact(state, specs)


def test_untouched_component_rates_are_reused():
    """Mutating one component must not re-solve (nor perturb) another."""
    state = FairShareState()
    a, b = Link("a", 100.0), Link("b", 100.0)
    state.add_flow("a1", (a,), None)
    state.add_flow("a2", (a,), 30.0)
    state.add_flow("b1", (b,), None)
    state.recompute()
    before = {fid: state.rates[fid] for fid in ("a1", "a2")}

    state.add_flow("b2", (b,), None)
    affected = state.recompute()
    assert set(affected) == {"b1", "b2"}
    assert {fid: state.rates[fid] for fid in ("a1", "a2")} == before


def test_component_merge_and_split():
    """A multi-link flow joins two components; removing it splits them."""
    a, b = Link("a", 100.0), Link("b", 10.0)
    state = FairShareState()
    specs = {
        "a1": ("a1", (a,), None),
        "b1": ("b1", (b,), None),
    }
    for fid, path, cap in specs.values():
        state.add_flow(fid, path, cap)
    _check_exact(state, specs)

    specs["ab"] = ("ab", (a, b), None)
    state.add_flow("ab", (a, b), None)
    _check_exact(state, specs)

    del specs["ab"]
    state.remove_flow("ab")
    _check_exact(state, specs)


def test_duplicate_links_in_one_path_count_once():
    link = Link("a", 100.0)
    state = FairShareState()
    state.add_flow("f", (link, link), None)
    state.add_flow("g", (link,), None)
    state.recompute()
    assert state.rates == max_min_fair(
        [("f", (link, link), None), ("g", (link,), None)]
    )


# -- timer hygiene regressions --------------------------------------------

def test_add_cap_hook_without_flows_arms_no_timer():
    env = Environment()
    net = FlowNetwork(env)
    net.add_cap_hook(lambda flow, n: None)
    assert math.isinf(env.peek())
    assert not env._queue


def test_poke_without_flows_arms_no_timer():
    env = Environment()
    net = FlowNetwork(env)
    net.poke()
    assert math.isinf(env.peek())
    assert not env._queue


def test_abort_last_flow_cancels_timer():
    env = Environment()
    net = FlowNetwork(env)
    flow = net.transfer([Link("l", 100.0)], 10.0)
    assert not math.isinf(env.peek())
    net.abort(flow)
    assert math.isinf(env.peek())


def test_superseded_timers_are_cancelled():
    """Each reschedule cancels the previous completion timer, so at most
    one live timer exists no matter how much churn preceded it."""
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    for i in range(10):
        net.transfer([link], 10.0 + i)
    live = [ev for _, _, ev in env._queue if not ev._cancelled]
    assert len(live) == 1


def test_cap_hook_memo_invalidated_by_poke():
    """poke() must re-run hooks even when concurrency is unchanged."""
    env = Environment()
    net = FlowNetwork(env)
    ceiling = {"cap": 50.0}
    net.add_cap_hook(lambda flow, n: ceiling["cap"])
    flow = net.transfer([Link("l", 100.0)], 10.0)
    assert flow.rate_mbps == 50.0
    ceiling["cap"] = 25.0
    net.poke()
    assert flow.rate_mbps == 25.0
