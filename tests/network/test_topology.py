"""Unit tests for datacenter topology and the latency model."""

import numpy as np
import pytest

from repro.network import Datacenter, LatencyModel
from repro.simcore import RandomStreams


def test_datacenter_shape():
    dc = Datacenter(racks=3, hosts_per_rack=4)
    assert len(dc.racks) == 3
    assert dc.host_count() == 12
    assert all(len(r.hosts) == 4 for r in dc.racks)


def test_same_host_path_is_empty():
    dc = Datacenter(racks=1, hosts_per_rack=2)
    h = dc.hosts[0]
    assert dc.path(h, h) == ()


def test_same_rack_path_crosses_both_nics():
    dc = Datacenter(racks=1, hosts_per_rack=2)
    a, b = dc.hosts
    path = dc.path(a, b)
    assert path == (a.nic_tx, b.nic_rx)
    assert dc.same_rack(a, b)


def test_cross_rack_path_includes_uplinks():
    dc = Datacenter(racks=2, hosts_per_rack=1)
    a, b = dc.hosts
    path = dc.path(a, b)
    assert path == (a.nic_tx, a.rack.uplink_tx, b.rack.uplink_rx, b.nic_rx)
    assert not dc.same_rack(a, b)


def test_oversubscription_shrinks_uplink():
    dc = Datacenter(racks=1, hosts_per_rack=8, host_nic_mbps=125.0,
                    oversubscription=4.0)
    assert dc.racks[0].uplink_tx.capacity_mbps == pytest.approx(250.0)


def test_datacenter_validation():
    with pytest.raises(ValueError):
        Datacenter(racks=0)
    with pytest.raises(ValueError):
        Datacenter(oversubscription=0.5)


def test_latency_model_matches_paper_quantiles():
    rng = RandomStreams(42).stream("lat")
    model = LatencyModel(rng)
    samples_ms = np.array(
        [model.sample_rtt(same_rack=True) for _ in range(10000)]
    ) * 1000.0
    # Fig. 4: ~50% <= 1 ms (on the 1 ms grid), ~75% <= 2 ms.
    on_grid = np.ceil(samples_ms - 1e-9)
    frac_1ms = (on_grid <= 1.0).mean()
    frac_2ms = (on_grid <= 2.0).mean()
    assert 0.40 <= frac_1ms <= 0.70
    assert 0.65 <= frac_2ms <= 0.90
    assert samples_ms.max() <= 15.0
    assert samples_ms.min() > 0.0


def test_cross_rack_latency_strictly_slower_on_average():
    rng = RandomStreams(1).stream("lat")
    model = LatencyModel(rng)
    same = np.mean([model.sample_rtt(True) for _ in range(2000)])
    cross = np.mean([model.sample_rtt(False) for _ in range(2000)])
    assert cross > same


def test_one_way_is_half_rtt_scale():
    rng = RandomStreams(2).stream("lat")
    model = LatencyModel(rng)
    rtts = np.mean([model.sample_rtt() for _ in range(2000)])
    one_way = np.mean([model.sample_one_way() for _ in range(2000)])
    assert one_way == pytest.approx(rtts / 2.0, rel=0.15)
