"""Unit + property tests for the max-min fair allocator."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import Link, max_min_fair
from repro.network.fairshare import verify_allocation


def test_single_flow_gets_full_link():
    link = Link("l", 100.0)
    alloc = max_min_fair([("f", [link], None)])
    assert alloc["f"] == pytest.approx(100.0)


def test_equal_flows_split_evenly():
    link = Link("l", 90.0)
    flows = [(i, [link], None) for i in range(3)]
    alloc = max_min_fair(flows)
    assert all(alloc[i] == pytest.approx(30.0) for i in range(3))


def test_flow_cap_redistributes_to_others():
    link = Link("l", 100.0)
    alloc = max_min_fair([("capped", [link], 10.0), ("free", [link], None)])
    assert alloc["capped"] == pytest.approx(10.0)
    assert alloc["free"] == pytest.approx(90.0)


def test_bottleneck_identified_across_links():
    narrow = Link("narrow", 10.0)
    wide = Link("wide", 100.0)
    # f1 crosses both; f2 only the wide link.
    alloc = max_min_fair([
        ("f1", [narrow, wide], None),
        ("f2", [wide], None),
    ])
    assert alloc["f1"] == pytest.approx(10.0)
    assert alloc["f2"] == pytest.approx(90.0)


def test_classic_three_link_example():
    # Textbook max-min: flows A (l1,l2), B (l1), C (l2); l1=10, l2=20.
    l1, l2 = Link("l1", 10.0), Link("l2", 20.0)
    alloc = max_min_fair([
        ("A", [l1, l2], None),
        ("B", [l1], None),
        ("C", [l2], None),
    ])
    assert alloc["A"] == pytest.approx(5.0)
    assert alloc["B"] == pytest.approx(5.0)
    assert alloc["C"] == pytest.approx(15.0)


def test_cap_only_flow_allowed():
    alloc = max_min_fair([("nolink", [], 7.0)])
    assert alloc["nolink"] == pytest.approx(7.0)


def test_uncapped_unlinked_flow_rejected():
    with pytest.raises(ValueError):
        max_min_fair([("bad", [], None)])


def test_zero_cap_flow_gets_zero():
    link = Link("l", 100.0)
    alloc = max_min_fair([("off", [link], 0.0), ("on", [link], None)])
    assert alloc["off"] == 0.0
    assert alloc["on"] == pytest.approx(100.0)


def test_negative_cap_rejected():
    link = Link("l", 10.0)
    with pytest.raises(ValueError):
        max_min_fair([("f", [link], -1.0)])


def test_empty_flowset():
    assert max_min_fair([]) == {}


def test_link_validation():
    with pytest.raises(ValueError):
        Link("bad", 0.0)


@st.composite
def _flow_scenarios(draw):
    n_links = draw(st.integers(min_value=1, max_value=5))
    links = [
        Link(f"L{i}", draw(st.floats(min_value=1.0, max_value=1000.0)))
        for i in range(n_links)
    ]
    n_flows = draw(st.integers(min_value=1, max_value=8))
    flows = []
    for f in range(n_flows):
        crossed_idx = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_links - 1),
                min_size=1, max_size=n_links, unique=True,
            )
        )
        cap = draw(
            st.one_of(st.none(), st.floats(min_value=0.5, max_value=500.0))
        )
        flows.append((f, [links[i] for i in crossed_idx], cap))
    return flows


@given(_flow_scenarios())
@settings(max_examples=200, deadline=None)
def test_property_allocation_feasible_and_pareto(flows):
    alloc = max_min_fair(flows)
    # Feasible: no link or cap exceeded.
    verify_allocation(flows, alloc)
    # Pareto/bottleneck property: every flow is blocked by a saturated
    # link or by its own cap.
    link_load = {}
    for fid, links, cap in flows:
        for link in links:
            link_load[link] = link_load.get(link, 0.0) + alloc[fid]
    for fid, links, cap in flows:
        at_cap = cap is not None and alloc[fid] >= cap - 1e-6
        on_saturated = any(
            link_load[l] >= l.capacity_mbps - 1e-6 for l in links
        )
        assert at_cap or on_saturated, (
            f"flow {fid} rate {alloc[fid]} is not blocked by anything"
        )


@given(
    capacity=st.floats(min_value=1.0, max_value=1e4),
    n=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=100, deadline=None)
def test_property_single_link_split_is_exact(capacity, n):
    link = Link("l", capacity)
    alloc = max_min_fair([(i, [link], None) for i in range(n)])
    for i in range(n):
        assert math.isclose(alloc[i], capacity / n, rel_tol=1e-9)
