"""Tests for the background (cross) traffic generator."""

import pytest

from repro.network import BackgroundTraffic, FlowNetwork, Link
from repro.simcore import Distribution, Environment, RandomStreams


def _rng(seed=0):
    return RandomStreams(seed).stream("bg")


def test_intensity_zero_generates_nothing():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    bg = BackgroundTraffic(env, net, [link], _rng(), intensity=0.0)
    env.run(until=1000.0)
    assert bg.flows_started == 0
    assert net.active_count == 0


def test_intensity_validation():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    with pytest.raises(ValueError):
        BackgroundTraffic(env, net, [link], _rng(), intensity=1.0)
    with pytest.raises(ValueError):
        BackgroundTraffic(env, net, [link], _rng(), intensity=-0.1)


def test_traffic_occupies_the_link():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    BackgroundTraffic(
        env, net, [link], _rng(1), intensity=0.8, parallelism=4,
        flow_size_mb=Distribution.constant(200.0),
    )
    env.run(until=500.0)
    assert net.completed_count > 0


def test_duty_cycle_tracks_intensity():
    """A measured foreground flow should see roughly the residual share."""

    def measure(intensity, seed=3):
        env = Environment()
        net = FlowNetwork(env)
        link = Link("l", 100.0)
        if intensity > 0:
            BackgroundTraffic(
                env, net, [link], _rng(seed), intensity=intensity,
                parallelism=1,
                flow_size_mb=Distribution.constant(100.0),
            )
        rates = []

        def prober(env):
            # Wait for background to establish, then probe repeatedly.
            yield env.timeout(50.0)
            for _ in range(30):
                start = env.now
                flow = net.transfer([link], 50.0)
                yield flow.done
                rates.append(50.0 / (env.now - start))
                yield env.timeout(5.0)

        env.process(prober(env))
        env.run(until=5000.0)
        return sum(rates) / len(rates)

    idle = measure(0.0)
    busy = measure(0.8)
    assert idle == pytest.approx(100.0, rel=0.01)
    # Against one 80%-duty background source the prober averages well
    # below line rate but above the 50% fair share.
    assert 50.0 <= busy <= 90.0


def test_higher_intensity_means_more_contention():
    def mean_rate(intensity):
        env = Environment()
        net = FlowNetwork(env)
        link = Link("l", 100.0)
        BackgroundTraffic(
            env, net, [link], _rng(7), intensity=intensity, parallelism=2,
            flow_size_mb=Distribution.constant(150.0),
        )
        rates = []

        def prober(env):
            yield env.timeout(20.0)
            for _ in range(20):
                start = env.now
                flow = net.transfer([link], 30.0)
                yield flow.done
                rates.append(30.0 / (env.now - start))
                yield env.timeout(3.0)

        env.process(prober(env))
        env.run(until=4000.0)
        return sum(rates) / len(rates)

    assert mean_rate(0.2) > mean_rate(0.85)


def test_rate_cap_limits_background_share():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    BackgroundTraffic(
        env, net, [link], _rng(5), intensity=0.9, parallelism=1,
        rate_cap_mbps=10.0,
        flow_size_mb=Distribution.constant(1000.0),
    )
    rates = []

    def prober(env):
        yield env.timeout(10.0)
        start = env.now
        flow = net.transfer([link], 90.0)
        yield flow.done
        rates.append(90.0 / (env.now - start))

    env.process(prober(env))
    env.run(until=2000.0)
    # Background capped at 10 -> the prober gets ~90 MB/s.
    assert rates[0] == pytest.approx(90.0, rel=0.05)
