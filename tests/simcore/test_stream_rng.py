"""Batch-first stream draws (:class:`repro.simcore.StreamRNG`).

The cohort layer's RNG contract: batched views share the underlying
generator with scalar consumers of the same name, batch draws are
deterministic per seed, and the buffered scalar path serves whole
prefetched blocks in draw order.
"""

import numpy as np
import pytest

from repro.simcore import Distribution, RandomStreams, StreamRNG


def test_batched_view_shares_the_named_generator():
    streams = RandomStreams(7)
    rng = streams.batched("x")
    assert rng.gen is streams.stream("x")


def test_batched_view_is_cached():
    streams = RandomStreams(7)
    assert streams.batched("x") is streams.batched("x")
    assert streams.batched("x") is not streams.batched("y")


def test_draw_batch_matches_direct_sample_n():
    """draw_batch is exactly Distribution.sample_n on the same stream —
    no extra draws, no reordering."""
    dist = Distribution.exponential(0.3)
    a = dist.sample_n(RandomStreams(5).stream("s"), 64)
    b = RandomStreams(5).batched("s").draw_batch(dist, 64)
    assert np.array_equal(a, b)


def test_exponential_and_uniform_batches_deterministic():
    a = RandomStreams(9).batched("s")
    b = RandomStreams(9).batched("s")
    assert np.array_equal(
        a.exponential_batch(0.1, 32), b.exponential_batch(0.1, 32)
    )
    assert np.array_equal(
        a.uniform_batch(1.0, 2.0, 32), b.uniform_batch(1.0, 2.0, 32)
    )


def test_buffered_draw_serves_blocks_in_draw_order():
    """Scalar draws come from a prefetched block: the first
    ``buffer_size`` values equal one direct ``sample_n`` block, in
    order."""
    dist = Distribution.exponential(0.5)
    expected = dist.sample_n(RandomStreams(3).stream("s"), 8)
    rng = StreamRNG(RandomStreams(3).stream("s"), buffer_size=8)
    got = [rng.draw(dist) for _ in range(8)]
    assert got == [float(v) for v in expected]


def test_buffered_draw_refills_after_exhaustion():
    dist = Distribution.constant(1.5)
    rng = StreamRNG(RandomStreams(0).stream("s"), buffer_size=4)
    assert [rng.draw(dist) for _ in range(10)] == [1.5] * 10


def test_separate_distributions_get_separate_buffers():
    exp = Distribution.exponential(0.5)
    const = Distribution.constant(2.0)
    rng = StreamRNG(RandomStreams(1).stream("s"), buffer_size=4)
    assert rng.draw(const) == 2.0
    assert rng.draw(exp) != 2.0
    assert rng.draw(const) == 2.0


def test_buffer_size_validated():
    with pytest.raises(ValueError):
        StreamRNG(RandomStreams(0).stream("s"), buffer_size=0)


def test_batch_statistics_match_family():
    rng = RandomStreams(11).batched("stats")
    exp = rng.exponential_batch(0.25, 20_000)
    uni = rng.uniform_batch(3.0, 5.0, 20_000)
    assert abs(exp.mean() - 0.25) < 0.01
    assert 3.0 <= uni.min() and uni.max() <= 5.0
    assert abs(uni.mean() - 4.0) < 0.02
