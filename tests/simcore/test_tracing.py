"""Unit tests for tallies, time series, traces and histogram helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import Tally, TimeSeries, TraceRecorder, cdf_points, histogram


def test_tally_summary_statistics():
    t = Tally("lat")
    t.extend([1.0, 2.0, 3.0, 4.0])
    assert t.count == 4
    assert t.mean == 2.5
    assert abs(t.std - np.std([1, 2, 3, 4])) < 1e-12
    assert t.minimum == 1.0
    assert t.maximum == 4.0
    assert t.total == 10.0
    assert t.percentile(50) == 2.5


def test_tally_fraction_below():
    t = Tally()
    t.extend([1, 1, 2, 3])
    assert t.fraction_below(1) == 0.5
    assert t.fraction_below(2) == 0.75
    assert t.fraction_below(0) == 0.0


def test_empty_tally_raises():
    t = Tally("empty")
    with pytest.raises(ValueError):
        t.mean
    with pytest.raises(ValueError):
        t.std
    with pytest.raises(ValueError):
        t.percentile(50)
    with pytest.raises(ValueError):
        t.fraction_below(1.0)
    assert len(t) == 0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_property_tally_matches_numpy(xs):
    t = Tally()
    t.extend(xs)
    assert abs(t.mean - np.mean(xs)) < 1e-6 * max(1.0, abs(np.mean(xs)))
    assert abs(t.std - np.std(xs)) < 1e-6 * max(1.0, np.std(xs))
    assert t.minimum == min(xs)
    assert t.maximum == max(xs)


def test_timeseries_records_in_order():
    ts = TimeSeries("daily")
    ts.record(0.0, 1.0)
    ts.record(1.0, 2.0)
    assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]
    assert len(ts) == 2
    with pytest.raises(ValueError):
        ts.record(0.5, 9.9)


def test_trace_recorder_filtering():
    tr = TraceRecorder()
    tr.record(0.0, "task_start", task="t1")
    tr.record(1.0, "task_end", task="t1", status="ok")
    tr.record(2.0, "task_start", task="t2")
    assert len(tr) == 3
    assert [e.data["task"] for e in tr.of_kind("task_start")] == ["t1", "t2"]
    assert tr.kinds() == {"task_start": 2, "task_end": 1}


def test_trace_recorder_disabled_records_nothing():
    tr = TraceRecorder(enabled=False)
    tr.record(0.0, "x")
    assert len(tr) == 0


def test_histogram_fixed_edges():
    counts, edges = histogram([0.5, 1.5, 1.6, 2.5], [0, 1, 2, 3])
    assert list(counts) == [1, 2, 1]
    assert list(edges) == [0, 1, 2, 3]


def test_cdf_points_monotone():
    values, fracs = cdf_points([3.0, 1.0, 2.0])
    assert list(values) == [1.0, 2.0, 3.0]
    assert list(fracs) == pytest.approx([1 / 3, 2 / 3, 1.0])


def test_cdf_points_empty():
    values, fracs = cdf_points([])
    assert values.size == 0 and fracs.size == 0
