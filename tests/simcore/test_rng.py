"""Unit + property tests for reproducible RNG streams and distributions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import Distribution, RandomStreams


def test_same_seed_same_name_identical_stream():
    a = RandomStreams(7).stream("vm.boot")
    b = RandomStreams(7).stream("vm.boot")
    assert np.allclose(a.random(100), b.random(100))


def test_different_names_independent_streams():
    rs = RandomStreams(7)
    a = rs.stream("one").random(100)
    b = rs.stream("two").random(100)
    assert not np.allclose(a, b)


def test_stream_creation_order_does_not_matter():
    rs1 = RandomStreams(3)
    first = rs1.stream("alpha").random(10)
    rs1.stream("beta")

    rs2 = RandomStreams(3)
    rs2.stream("beta")
    second = rs2.stream("alpha").random(10)
    assert np.allclose(first, second)


def test_stream_is_cached():
    rs = RandomStreams(1)
    assert rs.stream("x") is rs.stream("x")


def test_spawn_derives_deterministic_child():
    a = RandomStreams(5).spawn("child").stream("s").random(10)
    b = RandomStreams(5).spawn("child").stream("s").random(10)
    c = RandomStreams(5).spawn("other").stream("s").random(10)
    assert np.allclose(a, b)
    assert not np.allclose(a, c)


def test_constant_distribution():
    rng = RandomStreams(0).stream("t")
    d = Distribution.constant(4.2)
    assert d.sample(rng) == 4.2
    assert d.mean == 4.2


def test_uniform_distribution_bounds_and_mean():
    rng = RandomStreams(0).stream("t")
    d = Distribution.uniform(2.0, 6.0)
    xs = d.sample_n(rng, 5000)
    assert xs.min() >= 2.0 and xs.max() <= 6.0
    assert abs(xs.mean() - 4.0) < 0.1
    assert d.mean == 4.0


def test_exponential_distribution_mean():
    rng = RandomStreams(0).stream("t")
    d = Distribution.exponential(3.0)
    xs = d.sample_n(rng, 20000)
    assert abs(xs.mean() - 3.0) < 0.15


def test_truncated_normal_respects_bounds():
    rng = RandomStreams(0).stream("t")
    d = Distribution.normal(10.0, 5.0, minimum=0.0)
    xs = d.sample_n(rng, 10000)
    assert xs.min() >= 0.0
    assert abs(xs.mean() - 10.0) < 1.0  # mild truncation barely shifts mean


def test_lognormal_matches_requested_mean_std():
    rng = RandomStreams(0).stream("t")
    d = Distribution.lognormal_from_mean_std(100.0, 30.0)
    xs = d.sample_n(rng, 100000)
    assert abs(xs.mean() - 100.0) / 100.0 < 0.02
    assert abs(xs.std() - 30.0) / 30.0 < 0.1
    assert (xs > 0).all()
    assert abs(d.mean - 100.0) < 1e-9


def test_pareto_minimum_and_tail():
    rng = RandomStreams(0).stream("t")
    d = Distribution.pareto(minimum=2.0, alpha=1.5)
    xs = d.sample_n(rng, 20000)
    assert xs.min() >= 2.0
    assert xs.max() > 10 * xs.min()  # heavy tail present
    assert abs(d.mean - 6.0) < 1e-9  # alpha*min/(alpha-1)


def test_empirical_distribution_weights():
    rng = RandomStreams(0).stream("t")
    d = Distribution.empirical([1.0, 2.0], weights=[3.0, 1.0])
    xs = d.sample_n(rng, 20000)
    assert set(np.unique(xs)) == {1.0, 2.0}
    assert abs((xs == 1.0).mean() - 0.75) < 0.02
    assert abs(d.mean - 1.25) < 1e-9


def test_distribution_validation():
    with pytest.raises(ValueError):
        Distribution.uniform(5.0, 1.0)
    with pytest.raises(ValueError):
        Distribution.exponential(0.0)
    with pytest.raises(ValueError):
        Distribution.normal(0.0, -1.0)
    with pytest.raises(ValueError):
        Distribution.lognormal_from_mean_std(-1.0, 1.0)
    with pytest.raises(ValueError):
        Distribution.pareto(0.0, 1.0)
    with pytest.raises(ValueError):
        Distribution.empirical([])
    with pytest.raises(ValueError):
        Distribution.empirical([1.0], weights=[1.0, 2.0])
    with pytest.raises(ValueError):
        Distribution("nonsense")


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_property_streams_reproducible_for_any_seed(seed):
    a = RandomStreams(seed).stream("s").random(5)
    b = RandomStreams(seed).stream("s").random(5)
    assert np.array_equal(a, b)


@given(
    mean=st.floats(min_value=0.1, max_value=1e4),
    std=st.floats(min_value=0.01, max_value=1e3),
)
@settings(max_examples=50, deadline=None)
def test_property_lognormal_always_positive(mean, std):
    rng = RandomStreams(1).stream("p")
    d = Distribution.lognormal_from_mean_std(mean, std)
    xs = d.sample_n(rng, 100)
    assert (xs > 0).all()
    assert math.isfinite(d.mean)
