"""Kernel robustness: interrupts interacting with resources/conditions."""

import pytest

from repro.simcore import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    Resource,
    Store,
)


def test_interrupt_while_waiting_on_resource_releases_cleanly():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10.0)
        log.append(("holder-out", env.now))

    def waiter(env):
        try:
            with res.request() as req:
                yield req
                log.append("waiter-acquired")
        except Interrupt:
            log.append(("waiter-interrupted", env.now))
        # The context manager cancelled the queued request on exit...
        yield env.timeout(0.0)

    def interrupter(env, victim):
        yield env.timeout(2.0)
        victim.interrupt()

    env.process(holder(env))
    victim = env.process(waiter(env))
    env.process(interrupter(env, victim))
    env.run()
    assert ("waiter-interrupted", 2.0) in log
    # ...so the resource's queue is clean and nothing leaked.
    assert res.count == 0
    assert res.queue == []


def test_interrupt_while_holding_resource_still_releases_via_context():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def victim(env):
        try:
            with res.request() as req:
                yield req
                order.append("victim-in")
                yield env.timeout(100.0)
        except Interrupt:
            order.append("victim-interrupted")

    def successor(env):
        yield env.timeout(1.0)
        with res.request() as req:
            yield req
            order.append(("successor-in", env.now))

    v = env.process(victim(env))

    def interrupter(env):
        yield env.timeout(5.0)
        v.interrupt()

    env.process(successor(env))
    env.process(interrupter(env))
    env.run()
    assert order == ["victim-in", "victim-interrupted", ("successor-in", 5.0)]
    assert res.count == 0


def test_condition_of_conditions():
    env = Environment()
    results = []

    def proc(env):
        inner_a = AllOf(env, [env.timeout(1.0, "a1"), env.timeout(2.0, "a2")])
        inner_b = AnyOf(env, [env.timeout(5.0, "b1"), env.timeout(9.0, "b2")])
        got = yield AllOf(env, [inner_a, inner_b])
        results.append((env.now, len(got)))

    env.process(proc(env))
    env.run()
    assert results == [(5.0, 2)]


def test_store_get_cancellation_on_interrupt():
    env = Environment()
    store = Store(env)
    log = []

    def consumer(env):
        get = store.get()
        try:
            item = yield get
            log.append(("got", item))
        except Interrupt:
            get.cancel()
            log.append("cancelled")

    def interrupter(env, victim):
        yield env.timeout(1.0)
        victim.interrupt()

    victim = env.process(consumer(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == ["cancelled"]
    assert store._getters == []

    # A later put is NOT consumed by the cancelled getter.
    def producer(env):
        yield store.put("orphan")

    env.process(producer(env))
    env.run()
    assert list(store.items) == ["orphan"]


def test_failed_process_as_condition_child_defused():
    env = Environment()
    caught = []

    def failer(env):
        yield env.timeout(1.0)
        raise RuntimeError("inner failure")

    def waiter(env):
        p = env.process(failer(env))
        try:
            yield AnyOf(env, [p, env.timeout(10.0)])
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(waiter(env))
    env.run()  # must not crash with an unhandled failure
    assert caught == ["inner failure"]


def test_process_waiting_on_failed_already_processed_event():
    env = Environment()
    caught = []

    def failer(env):
        yield env.timeout(1.0)
        raise KeyError("early")

    p = env.process(failer(env))
    p.defuse()  # nobody watches yet; don't crash the run
    env.run()
    assert p.processed and not p.ok

    def late_waiter(env):
        try:
            yield p
        except KeyError as exc:
            caught.append(exc.args[0])

    env.process(late_waiter(env))
    env.run()
    assert caught == ["early"]


def test_multiple_interrupts_queue_up():
    env = Environment()
    hits = []

    def victim(env):
        for _ in range(2):
            try:
                yield env.timeout(100.0)
            except Interrupt as i:
                hits.append((env.now, i.cause))
        yield env.timeout(1.0)

    v = env.process(victim(env))

    def interrupter(env, cause, at):
        yield env.timeout(at)
        if v.is_alive:
            v.interrupt(cause=cause)

    env.process(interrupter(env, "one", 1.0))
    env.process(interrupter(env, "two", 2.0))
    env.run()
    assert hits == [(1.0, "one"), (2.0, "two")]
