"""Unit tests for the discrete-event engine."""

import pytest

from repro.simcore import Environment, Event, StopSimulation


def test_clock_starts_at_initial_time():
    assert Environment().now == 0.0
    assert Environment(initial_time=42.5).now == 42.5


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc(env):
        yield env.timeout(3.0)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [3.0]
    assert env.now == 3.0


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def ticker(env):
        while True:
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run(until=5.5)
    assert env.now == 5.5


def test_run_until_time_with_no_events_advances_clock():
    env = Environment()
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_past_time_raises():
    env = Environment(initial_time=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return "payload"

    p = env.process(proc(env))
    assert env.run(until=p) == "payload"
    assert env.now == 2.0


def test_run_until_event_never_fires_raises():
    env = Environment()
    orphan = env.event()

    def proc(env):
        yield env.timeout(1.0)

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="never triggered"):
        env.run(until=orphan)


def test_simultaneous_events_fire_in_schedule_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_step_with_empty_queue_raises():
    env = Environment()
    with pytest.raises(RuntimeError):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(7.0)
    assert env.peek() == 7.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_schedule_at_absolute_time():
    env = Environment()
    ev = env.event()
    ev._ok = True
    ev._value = "x"
    env.schedule_at(9.0, ev)
    env.run()
    assert env.now == 9.0
    assert ev.processed


def test_schedule_at_past_raises():
    env = Environment(initial_time=5.0)
    with pytest.raises(ValueError):
        env.schedule_at(4.0, env.event())


def test_unhandled_event_failure_propagates():
    env = Environment()
    ev = env.event()
    ev.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_defused_failure_does_not_propagate():
    env = Environment()
    ev = env.event()
    ev.fail(ValueError("boom"))
    ev.defuse()
    env.run()  # does not raise
