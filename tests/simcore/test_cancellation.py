"""Lazy timeout cancellation and the Race fast path.

The kernel discards cancelled events at pop time instead of eagerly
re-heapifying, but still advances the clock to the cancelled entry's
time -- the clock trajectory is identical to processing a no-op, which
keeps serial results bit-identical to the pre-fast-path kernel.
"""

import pytest

from repro.simcore import Environment, Race


def test_cancelled_timeout_never_fires():
    env = Environment()
    fired = []
    timer = env.timeout(5.0)
    timer.add_callback(lambda ev: fired.append(ev))
    timer.cancel()
    env.run()
    assert fired == []
    assert timer.cancelled
    # A Timeout is triggered (scheduled) at construction; cancellation
    # guarantees it is never *processed*.
    assert not timer.processed


def test_cancelled_timeout_still_advances_clock():
    env = Environment()
    timer = env.timeout(5.0)
    timer.cancel()
    env.run()
    assert env.now == 5.0


def test_cancel_after_processed_raises():
    env = Environment()
    timer = env.timeout(1.0)
    env.run()
    with pytest.raises(RuntimeError):
        timer.cancel()


def test_add_callback_on_cancelled_event_is_dropped():
    env = Environment()
    timer = env.timeout(1.0)
    timer.cancel()
    timer.add_callback(lambda ev: pytest.fail("must never run"))
    env.run()


def test_process_yielding_cancelled_event_fails():
    env = Environment()
    timer = env.timeout(3.0)
    timer.cancel()

    def proc(env):
        yield timer

    p = env.process(proc(env))
    with pytest.raises(RuntimeError, match="cancelled event"):
        env.run()
    assert not p.ok


def test_peek_skips_cancelled_head():
    env = Environment()
    first = env.timeout(1.0)
    env.timeout(2.0)
    first.cancel()
    assert env.peek() == 2.0


def test_step_skips_cancelled_entries():
    env = Environment()
    first = env.timeout(1.0)
    second = env.timeout(2.0)
    first.cancel()
    env.step()
    assert second.triggered
    assert env.now == 2.0


def test_remove_callback_detaches_single_and_promoted():
    env = Environment()
    timer = env.timeout(1.0)
    hits = []

    def cb_a(ev):
        hits.append("a")

    def cb_b(ev):
        hits.append("b")

    timer.add_callback(cb_a)
    timer.add_callback(cb_b)
    timer.remove_callback(cb_a)
    timer.remove_callback(lambda ev: None)  # absent: silently ignored
    env.run()
    assert hits == ["b"]


def test_race_contender_wins_cancels_deadline():
    env = Environment()

    def op(env):
        yield env.timeout(1.0)
        return "fast"

    def waiter(env):
        proc = env.process(op(env))
        yield Race(env, proc, 10.0)
        assert proc.processed and proc.ok
        return proc.value

    p = env.process(waiter(env))
    env.run()
    assert p.value == "fast"
    # The dead 10s deadline must not hold the clock hostage ...
    # but it does advance the clock when popped (trajectory parity).
    assert env.now == 10.0


def test_race_deadline_wins_yields_none():
    env = Environment()

    def op(env):
        yield env.timeout(30.0)
        return "slow"

    def waiter(env):
        proc = env.process(op(env))
        result = yield Race(env, proc, 2.0)
        assert result is None
        assert not proc.processed
        proc.defuse()
        return "timed-out"

    p = env.process(waiter(env))
    env.run()
    assert p.value == "timed-out"


def test_env_race_factory():
    env = Environment()

    def op(env):
        yield env.timeout(1.0)
        return 42

    def waiter(env):
        proc = env.process(op(env))
        yield env.race(proc, 5.0)
        return proc.value

    p = env.process(waiter(env))
    env.run()
    assert p.value == 42
