"""Unit tests for event primitives (Event, Timeout, AllOf/AnyOf)."""

import pytest

from repro.simcore import AllOf, AnyOf, Environment, Event


def test_event_lifecycle_flags():
    env = Environment()
    ev = env.event()
    assert not ev.triggered and not ev.processed
    ev.succeed(99)
    assert ev.triggered and not ev.processed
    env.run()
    assert ev.processed
    assert ev.value == 99


def test_event_value_before_trigger_raises():
    env = Environment()
    with pytest.raises(RuntimeError):
        env.event().value


def test_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_callback_after_processed_runs_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("v")
    env.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["v"]


def test_all_of_waits_for_every_event():
    env = Environment()
    results = {}

    def proc(env):
        t1 = env.timeout(1.0, "one")
        t2 = env.timeout(5.0, "two")
        got = yield env.all_of([t1, t2])
        results["values"] = sorted(got.values())
        results["at"] = env.now

    env.process(proc(env))
    env.run()
    assert results["values"] == ["one", "two"]
    assert results["at"] == 5.0


def test_any_of_fires_on_first_event():
    env = Environment()
    results = {}

    def proc(env):
        t1 = env.timeout(1.0, "fast")
        t2 = env.timeout(5.0, "slow")
        got = yield env.any_of([t1, t2])
        results["values"] = list(got.values())
        results["at"] = env.now

    env.process(proc(env))
    env.run()
    assert results["values"] == ["fast"]
    assert results["at"] == 1.0


def test_all_of_empty_fires_immediately():
    env = Environment()
    results = []

    def proc(env):
        got = yield env.all_of([])
        results.append((env.now, got))

    env.process(proc(env))
    env.run()
    assert results == [(0.0, {})]


def test_condition_fails_if_child_fails():
    env = Environment()
    caught = []

    def failer(env):
        yield env.timeout(1.0)
        raise RuntimeError("child died")

    def waiter(env):
        p = env.process(failer(env))
        try:
            yield env.all_of([p, env.timeout(10.0)])
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(waiter(env))
    env.run()
    assert caught == ["child died"]


def test_condition_with_already_processed_child():
    env = Environment()
    ev = env.timeout(0.0, "early")
    env.run(until=0.5)
    assert ev.processed
    results = []

    def proc(env):
        got = yield env.all_of([ev, env.timeout(1.0, "late")])
        results.append(sorted(got.values()))

    env.process(proc(env))
    env.run()
    assert results == [["early", "late"]]


def test_condition_rejects_foreign_events():
    env1, env2 = Environment(), Environment()
    with pytest.raises(ValueError):
        AllOf(env1, [env2.timeout(1.0)])


def test_timeout_carries_value():
    env = Environment()
    got = []

    def proc(env):
        got.append((yield env.timeout(1.0, value="hello")))

    env.process(proc(env))
    env.run()
    assert got == ["hello"]
