"""Unit tests for Resource, PriorityResource, Store and Container."""

import pytest

from repro.simcore import Container, Environment, PriorityResource, Resource, Store


def test_resource_serializes_holders():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def user(env, tag):
        with res.request() as req:
            yield req
            log.append((tag, "in", env.now))
            yield env.timeout(2.0)
        log.append((tag, "out", env.now))

    env.process(user(env, "a"))
    env.process(user(env, "b"))
    env.run()
    assert log == [
        ("a", "in", 0.0), ("a", "out", 2.0),
        ("b", "in", 2.0), ("b", "out", 4.0),
    ]


def test_resource_capacity_allows_parallelism():
    env = Environment()
    res = Resource(env, capacity=2)
    done = []

    def user(env, tag):
        with res.request() as req:
            yield req
            yield env.timeout(1.0)
        done.append((tag, env.now))

    for tag in "abc":
        env.process(user(env, tag))
    env.run()
    assert done == [("a", 1.0), ("b", 1.0), ("c", 2.0)]


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, tag, arrive):
        yield env.timeout(arrive)
        with res.request() as req:
            yield req
            order.append(tag)
            yield env.timeout(1.0)

    env.process(user(env, "first", 0.0))
    env.process(user(env, "second", 0.1))
    env.process(user(env, "third", 0.2))
    env.run()
    assert order == ["first", "second", "third"]


def test_priority_resource_serves_lowest_priority_first():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def user(env, tag, arrive, prio):
        yield env.timeout(arrive)
        with res.request(priority=prio) as req:
            yield req
            order.append(tag)
            yield env.timeout(10.0)

    env.process(user(env, "holder", 0.0, 0))
    env.process(user(env, "low-prio", 1.0, 5))
    env.process(user(env, "high-prio", 2.0, 1))
    env.run()
    assert order == ["holder", "high-prio", "low-prio"]


def test_release_without_hold_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    env.run()
    res.release(req)
    with pytest.raises(RuntimeError):
        res.release(req)


def test_cancel_removes_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)
    hold = res.request()
    queued = res.request()
    env.run()
    assert not queued.triggered
    queued.cancel()
    res.release(hold)
    env.run()
    assert not queued.triggered
    assert res.count == 0


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_store_fifo_put_get():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1.0)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append((item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert [g[0] for g in got] == [0, 1, 2]


def test_store_get_blocks_until_item():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((item, env.now))

    def producer(env):
        yield env.timeout(5.0)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [("late", 5.0)]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put("a")
        log.append(("put-a", env.now))
        yield store.put("b")
        log.append(("put-b", env.now))

    def consumer(env):
        yield env.timeout(3.0)
        item = yield store.get()
        log.append(("got", item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [("put-a", 0.0), ("got", "a", 3.0), ("put-b", 3.0)]


def test_store_filter_get():
    env = Environment()
    store = Store(env)
    got = []

    def setup(env):
        yield store.put({"kind": "x", "id": 1})
        yield store.put({"kind": "y", "id": 2})
        item = yield store.get(lambda it: it["kind"] == "y")
        got.append(item["id"])
        item = yield store.get()
        got.append(item["id"])

    env.process(setup(env))
    env.run()
    assert got == [2, 1]


def test_container_levels():
    env = Environment()
    tank = Container(env, capacity=10.0, init=5.0)
    log = []

    def drainer(env):
        yield tank.get(4.0)
        log.append(("got4", tank.level, env.now))
        yield tank.get(4.0)  # blocks: only 1 left
        log.append(("got4-again", tank.level, env.now))

    def filler(env):
        yield env.timeout(2.0)
        yield tank.put(6.0)

    env.process(drainer(env))
    env.process(filler(env))
    env.run()
    assert log == [("got4", 1.0, 0.0), ("got4-again", 3.0, 2.0)]


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=5.0, init=5.0)
    log = []

    def putter(env):
        yield tank.put(2.0)
        log.append(("room", env.now))

    def getter(env):
        yield env.timeout(4.0)
        yield tank.get(3.0)

    env.process(putter(env))
    env.process(getter(env))
    env.run()
    assert log == [("room", 4.0)]


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=1.0, init=2.0)
    tank = Container(env, capacity=1.0)
    with pytest.raises(ValueError):
        tank.get(0)
    with pytest.raises(ValueError):
        tank.put(-1)
