"""Unit tests for process semantics: waiting, returning, interrupting."""

import pytest

from repro.simcore import Environment, Interrupt


def test_process_return_value_propagates_to_waiter():
    env = Environment()
    out = []

    def child(env):
        yield env.timeout(2.0)
        return 17

    def parent(env):
        out.append((yield env.process(child(env))))

    env.process(parent(env))
    env.run()
    assert out == [17]


def test_process_exception_propagates_to_waiter():
    env = Environment()
    caught = []

    def child(env):
        yield env.timeout(1.0)
        raise KeyError("gone")

    def parent(env):
        try:
            yield env.process(child(env))
        except KeyError as exc:
            caught.append(exc.args[0])

    env.process(parent(env))
    env.run()
    assert caught == ["gone"]


def test_unhandled_process_exception_crashes_run():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        raise RuntimeError("unwatched")

    env.process(child(env))
    with pytest.raises(RuntimeError, match="unwatched"):
        env.run()


def test_interrupt_wakes_sleeping_process():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
            log.append("overslept")
        except Interrupt as i:
            log.append(("interrupted", env.now, i.cause))
            yield env.timeout(1.0)
            log.append(("resumed", env.now))

    def interrupter(env, victim):
        yield env.timeout(3.0)
        victim.interrupt(cause="wakeup")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [("interrupted", 3.0, "wakeup"), ("resumed", 4.0)]


def test_interrupt_finished_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_self_interrupt_rejected():
    env = Environment()
    errors = []

    def proc(env):
        me = env.active_process
        try:
            me.interrupt()
        except RuntimeError:
            errors.append("rejected")
        yield env.timeout(0.0)

    env.process(proc(env))
    env.run()
    assert errors == ["rejected"]


def test_original_event_does_not_double_resume_after_interrupt():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(5.0)
            log.append("timeout-fired")
        except Interrupt:
            log.append("interrupted")
        # Sleep past the original timeout to catch a double resume.
        yield env.timeout(10.0)
        log.append("done")

    def interrupter(env, victim):
        yield env.timeout(1.0)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == ["interrupted", "done"]


def test_yield_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_yield_foreign_event_fails_process():
    env1, env2 = Environment(), Environment()

    def bad(env):
        yield env2.timeout(1.0)

    env1.process(bad(env1))
    with pytest.raises(RuntimeError, match="another environment"):
        env1.run()


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_is_alive_transitions():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_waiting_on_already_processed_event_resumes_same_timestep():
    env = Environment()
    log = []

    def proc(env):
        ev = env.timeout(0.0, "v")
        yield env.timeout(1.0)
        # ev processed long ago; yielding it must resume immediately.
        got = yield ev
        log.append((env.now, got))

    env.process(proc(env))
    env.run()
    assert log == [(1.0, "v")]


def test_two_processes_interleave_deterministically():
    env = Environment()
    log = []

    def proc(env, tag, period):
        while env.now < 4:
            yield env.timeout(period)
            log.append((tag, env.now))

    env.process(proc(env, "a", 1.0))
    env.process(proc(env, "b", 2.0))
    env.run(until=5.0)
    # Simultaneous events fire in schedule order: b's t=2 timeout was
    # scheduled at t=0, before a rescheduled at t=1, so b logs first at 2.0.
    assert log == [
        ("a", 1.0), ("b", 2.0), ("a", 2.0), ("a", 3.0),
        ("b", 4.0), ("a", 4.0),
    ]
