"""Explicit ``run(until=...)`` / ``horizon`` interaction semantics.

``until`` is either a time bound (number) or an event to wait for; a
second time bound only makes sense alongside an event, so ``horizon``
requires an Event ``until`` and the ambiguous combinations raise
``TypeError`` instead of silently picking a winner.
"""

import pytest

from repro.simcore import Environment


def _fire_after(env, delay, value="done"):
    def proc(env):
        yield env.timeout(delay)
        return value

    return env.process(proc(env))


def test_horizon_without_event_until_raises():
    env = Environment()
    with pytest.raises(TypeError, match="requires an Event"):
        env.run(horizon=10.0)


def test_horizon_with_numeric_until_raises():
    env = Environment()
    env.timeout(1.0)
    with pytest.raises(TypeError, match="numeric 'until'"):
        env.run(until=5.0, horizon=10.0)


def test_horizon_in_the_past_raises():
    env = Environment(initial_time=100.0)
    proc = _fire_after(env, 1.0)
    with pytest.raises(ValueError, match="in the past"):
        env.run(until=proc, horizon=50.0)


def test_event_wins_before_horizon_returns_value():
    env = Environment()
    proc = _fire_after(env, 3.0, value="won")
    assert env.run(until=proc, horizon=10.0) == "won"
    assert proc.processed
    assert env.now == 3.0


def test_horizon_wins_returns_none_and_event_still_pending():
    env = Environment()
    proc = _fire_after(env, 30.0)
    assert env.run(until=proc, horizon=5.0) is None
    assert not proc.processed
    assert env.now == 5.0


def test_horizon_win_detaches_stop_callback():
    """After a horizon-bounded run gives up on its event, the event
    firing later must not abort an unrelated run() call."""
    env = Environment()
    proc = _fire_after(env, 30.0)
    assert env.run(until=proc, horizon=5.0) is None
    # Run to exhaustion: proc fires at t=30 and must NOT raise
    # StopSimulation into this (different) run call.
    env.run()
    assert proc.processed
    assert env.now == 30.0


def test_horizon_win_with_drained_queue_lands_on_horizon():
    env = Environment()
    stop = env.event()  # never triggered; nothing else scheduled
    env.timeout(1.0)
    assert env.run(until=stop, horizon=8.0) is None
    assert env.now == 8.0


def test_event_until_without_horizon_still_raises_when_starved():
    env = Environment()
    stop = env.event()
    env.timeout(1.0)
    with pytest.raises(RuntimeError, match="never triggered"):
        env.run(until=stop)


def test_already_processed_event_returns_immediately():
    env = Environment()
    proc = _fire_after(env, 1.0, value=7)
    env.run()
    assert env.run(until=proc, horizon=99.0) == 7
    assert env.now == 1.0
