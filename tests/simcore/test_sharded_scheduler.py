"""The sharded (calendar-queue) scheduler is observably identical to
the heap scheduler.

``Environment(scheduler="sharded")`` swaps the pending-event structure
for per-time-bucket heaps behind the same ``peek``/``step``/``run``
surface.  The contract is *total* behavioral equivalence: identical
firing order, identical clock trajectory, identical lazy cancel-discard
(the clock still advances past cancelled entries), identical
``run(until=..., horizon=...)`` outcomes — pinned here property-style by
replaying randomized schedules under both schedulers and comparing
traces event for event.
"""

import pytest

from repro.simcore import Environment, RandomStreams, StopSimulation


def _both():
    return Environment(scheduler="heap"), Environment(
        scheduler="sharded", bucket_width=1.0
    )


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError):
        Environment(scheduler="wheel")


def test_scheduler_attribute_reflects_choice():
    heap, sharded = _both()
    assert heap.scheduler == "heap"
    assert sharded.scheduler == "sharded"


def _run_trace(env, delays):
    """Schedule ``delays`` as timeouts, run, record (time, tag) firings."""
    trace = []

    def waiter(env, delay, tag):
        yield env.timeout(delay)
        trace.append((env.now, tag))

    for tag, delay in enumerate(delays):
        env.process(waiter(env, delay, tag))
    env.run()
    return trace, env.now


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_random_schedules_fire_identically(seed):
    """Property: any random mix of delays (sub-bucket, multi-bucket,
    ties, zero) fires in the same order at the same times under both
    schedulers, and both clocks end at the same instant."""
    rng = RandomStreams(seed).stream("delays")
    delays = [float(d) for d in rng.uniform(0.0, 37.0, size=200)]
    delays += [1.0, 1.0, 1.0, 0.0, 36.999]  # forced ties and edges
    heap, sharded = _both()
    trace_h, now_h = _run_trace(heap, delays)
    trace_s, now_s = _run_trace(sharded, delays)
    assert trace_h == trace_s
    assert now_h == now_s


@pytest.mark.parametrize("seed", [10, 11, 12])
def test_random_cancellations_discard_identically(seed):
    """Property: cancelling a random subset leaves both schedulers
    firing the survivors identically — and both clocks still advance
    past the cancelled entries' times (lazy discard)."""
    streams = RandomStreams(seed)
    delays = [
        float(d) for d in streams.stream("delays").uniform(0.0, 20.0, size=100)
    ]
    doomed_mask = [
        bool(x)
        for x in streams.stream("cancel").uniform(0.0, 1.0, size=100) < 0.4
    ]
    heap, sharded = _both()
    results = []
    for env in (heap, sharded):
        events = [env.timeout(d) for d in delays]
        for event, kill in zip(events, doomed_mask):
            if kill:
                event.cancel()
        fired = []
        for idx, event in enumerate(events):
            if not doomed_mask[idx]:
                event.add_callback(
                    lambda e, idx=idx, env=env: fired.append((env.now, idx))
                )
        env.run()
        results.append((fired, env.now))
    assert results[0] == results[1]


def test_cancel_discard_still_advances_clock_sharded():
    for env in _both():
        keep = env.timeout(1.0)
        late = env.timeout(9.0)
        late.cancel()
        env.run()
        # The cancelled 9.0 entry is discarded lazily but the clock
        # advances to it on drain — identical under both schedulers.
        assert env.now == 9.0
        assert keep.processed


def test_peek_skips_cancelled_heads_identically():
    for env in _both():
        first = env.timeout(1.0)
        env.timeout(3.0)
        first.cancel()
        assert env.peek() == 3.0


def test_step_identical_including_empty_error():
    heap, sharded = _both()
    for env in (heap, sharded):
        env.timeout(2.0)
        env.step()
        assert env.now == 2.0
        with pytest.raises(RuntimeError):
            env.step()


def test_run_until_time_stops_clock_identically():
    for env in _both():
        ticks = []

        def ticker(env):
            while True:
                yield env.timeout(1.0)
                ticks.append(env.now)

        env.process(ticker(env))
        env.run(until=10.5)
        assert env.now == 10.5
        assert ticks == [float(i) for i in range(1, 11)]


def test_run_until_event_with_horizon_identical():
    outcomes = []
    for env in _both():
        def slow(env):
            yield env.timeout(100.0)
            return "late"

        proc = env.process(slow(env))
        try:
            env.run(until=proc, horizon=5.0)
            outcomes.append(("returned", env.now))
        except StopSimulation:
            outcomes.append(("stopped", env.now))
    assert outcomes[0] == outcomes[1]


def test_process_chains_identical_under_both():
    """Multi-stage process graphs (spawn, wait, re-spawn) follow the
    same schedule under both schedulers."""
    results = []
    for env in _both():
        log = []

        def child(env, n):
            yield env.timeout(0.5 * n)
            log.append(("child", n, env.now))
            return n * 2

        def parent(env):
            for n in range(5):
                got = yield env.process(child(env, n))
                log.append(("parent", got, env.now))

        env.process(parent(env))
        env.run()
        results.append((log, env.now))
    assert results[0] == results[1]


def test_timeout_batch_schedule_is_bit_identical_to_loop():
    """``timeout_batch`` must assign the same (time, seq) entries as an
    equivalent loop of ``timeout`` calls — the whole point of batching
    is paying less, not scheduling differently."""
    for scheduler in ("heap", "sharded"):
        loop_env = Environment(scheduler=scheduler)
        batch_env = Environment(scheduler=scheduler)
        delays = [3.0, 1.0, 2.0, 1.0, 0.0, 7.5]
        for d in delays:
            loop_env.timeout(d)
        batch_env.timeout_batch(delays)
        loop_trace, batch_trace = [], []
        loop_env.run()
        batch_env.run()
        assert loop_env.now == batch_env.now

        # Re-run with observers to compare firing order.
        loop_env = Environment(scheduler=scheduler)
        batch_env = Environment(scheduler=scheduler)
        for i, d in enumerate(delays):
            loop_env.timeout(d).add_callback(
                lambda e, i=i: loop_trace.append((loop_env.now, i))
            )
        for i, event in enumerate(batch_env.timeout_batch(delays)):
            event.add_callback(
                lambda e, i=i: batch_trace.append((batch_env.now, i))
            )
        loop_env.run()
        batch_env.run()
        assert loop_trace == batch_trace


def test_timeout_batch_rejects_negative_delay_atomically():
    """A bad delay mid-batch must leave nothing scheduled."""
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout_batch([1.0, 2.0, -0.5, 3.0])
    assert env.peek() == float("inf")  # nothing scheduled


def test_timeout_batch_values_delivered():
    env = Environment()
    got = []

    def waiter(env, event):
        value = yield event
        got.append((env.now, value))

    for event in env.timeout_batch([2.0, 1.0], value="tick"):
        env.process(waiter(env, event))
    env.run()
    assert got == [(1.0, "tick"), (2.0, "tick")]


def test_inf_delay_parks_in_inf_bucket():
    """An unreachable timeout must not break the sharded bucket math
    (inf // width is nan); it parks at +inf and a bounded run ignores
    it while still running the finite work."""
    env = Environment(scheduler="sharded")
    fired = []
    env.timeout(2.0).add_callback(lambda e: fired.append(env.now))
    env.timeout(float("inf"))
    env.run(until=10.0)
    assert fired == [2.0]
    assert env.now == 10.0
