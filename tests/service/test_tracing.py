"""Unit tests for the bounded request tracer."""

import pytest

from repro.service.tracing import OK, RequestTrace, RequestTracer


def _trace(op="svc.op", outcome=OK, **kw):
    defaults = dict(
        service="svc",
        op=op,
        started_at=0.0,
        finished_at=1.0,
        outcome=outcome,
    )
    defaults.update(kw)
    return RequestTrace(**defaults)


def test_trace_latency_and_ok():
    t = _trace(started_at=2.0, finished_at=5.5)
    assert t.latency_s == pytest.approx(3.5)
    assert t.ok
    assert not _trace(outcome="OperationTimeoutError").ok


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        RequestTracer(capacity=0)
    # None = unbounded is allowed.
    RequestTracer(capacity=None)


def test_counters_and_records():
    tracer = RequestTracer()
    tracer.observe(_trace())
    tracer.observe(_trace(outcome="ServerBusyError"))
    assert tracer.total == 2 and tracer.errors == 1
    assert len(tracer.records()) == 2
    assert tracer.client_total == 0


def test_client_calls_tracked_separately():
    tracer = RequestTracer()
    tracer.observe_call(_trace(retries=2))
    tracer.observe_call(_trace(outcome="ClientTimeoutError", retries=3))
    assert tracer.client_total == 2 and tracer.client_errors == 1
    assert tracer.retries == 5
    assert tracer.records() == []
    assert len(tracer.client_calls()) == 2


def test_capacity_trimming_keeps_aggregates_exact():
    tracer = RequestTracer(capacity=100)
    for i in range(500):
        tracer.observe(_trace(started_at=float(i), finished_at=i + 1.0))
    assert tracer.total == 500
    assert tracer.dropped > 0
    retained = tracer.records()
    assert len(retained) <= 100 + 25  # capacity + one trim block
    assert len(retained) + tracer.dropped == 500
    # Newest records win.
    assert retained[-1].started_at == 499.0
    # Aggregates never trim.
    totals = tracer.per_op_totals()["svc.op"]
    assert totals["count"] == 500
    assert totals["latency_s"] == pytest.approx(500.0)


def test_per_op_totals_fold_stage_timings():
    tracer = RequestTracer()
    tracer.observe(
        _trace(op="a", queue_wait_s=0.5, transfer_s=1.5, size_mb=8.0)
    )
    tracer.observe(
        _trace(op="a", outcome="X", queue_wait_s=0.25, size_mb=2.0)
    )
    tracer.observe(_trace(op="b"))
    totals = tracer.per_op_totals()
    assert totals["a"]["count"] == 2 and totals["a"]["errors"] == 1
    assert totals["a"]["queue_wait_s"] == pytest.approx(0.75)
    assert totals["a"]["transfer_s"] == pytest.approx(1.5)
    assert totals["a"]["size_mb"] == pytest.approx(10.0)
    assert totals["b"]["count"] == 1


def test_of_op_filters():
    tracer = RequestTracer()
    tracer.observe(_trace(op="a"))
    tracer.observe(_trace(op="b"))
    tracer.observe(_trace(op="a"))
    assert [t.op for t in tracer.of_op("a")] == ["a", "a"]


def test_per_service_op_totals_keep_services_apart():
    tracer = RequestTracer()
    tracer.observe(_trace(service="blob", op="get"))
    tracer.observe(_trace(service="table", op="get"))
    tracer.observe(
        _trace(service="table", op="get", outcome="ServerBusyError")
    )
    exact = tracer.per_service_op_totals()
    assert exact[("blob", "get")]["count"] == 1
    assert exact[("table", "get")]["count"] == 2
    assert exact[("table", "get")]["errors"] == 1
    # The op-keyed compatibility view merges across services.
    merged = tracer.per_op_totals()
    assert merged["get"]["count"] == 3
    assert merged["get"]["errors"] == 1


def test_latency_histograms_survive_trimming_and_skip_failures():
    tracer = RequestTracer(capacity=10)
    for i in range(200):
        tracer.observe(_trace(started_at=0.0, finished_at=0.1))
    tracer.observe(_trace(outcome="ServerBusyError", finished_at=9.0))
    assert tracer.dropped > 0
    hist = tracer.latency_histograms()[("svc", "svc.op")]
    assert hist.count == 200  # failures excluded, trimming irrelevant
    assert hist.percentile(99) == pytest.approx(0.1, rel=0.03)
    assert tracer.latency_histograms() is not tracer.latency_histograms()


def test_client_latency_histograms_track_call_level_view():
    tracer = RequestTracer()
    tracer.observe_call(_trace(started_at=0.0, finished_at=0.5, retries=1))
    tracer.observe_call(_trace(outcome="ClientTimeoutError", retries=3))
    hists = tracer.client_latency_histograms()
    assert hists[("svc", "svc.op")].count == 1
    calls = tracer.client_per_op_totals()[("svc", "svc.op")]
    assert calls["count"] == 2 and calls["errors"] == 1
    assert calls["retries"] == 4


def test_disabled_tracer_records_nothing():
    tracer = RequestTracer(enabled=False)
    assert not tracer.enabled
    tracer.observe(_trace())
    tracer.observe_call(_trace())
    assert tracer.total == 0 and tracer.client_total == 0
    assert tracer.records() == []


def test_clear_resets_everything():
    tracer = RequestTracer(capacity=10)
    for i in range(50):
        tracer.observe(_trace())
    tracer.observe_call(_trace(retries=1))
    tracer.clear()
    assert tracer.total == 0 and tracer.errors == 0
    assert tracer.dropped == 0 and tracer.retries == 0
    assert tracer.records() == [] and tracer.client_calls() == []
    assert tracer.per_op_totals() == {}
