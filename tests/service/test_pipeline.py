"""Unit tests for the unified request pipeline."""

from types import SimpleNamespace

import pytest

from repro.service import (
    LatencyProfile,
    OpSpec,
    RequestPipeline,
    RequestTracer,
    TransferSpec,
)
from repro.simcore import Environment, RandomStreams


def _rng(seed=0):
    return RandomStreams(seed).stream("svc")


def drive(env, gen):
    """Run one pipeline request in a process; capture result or error."""
    box = {}

    def proc():
        try:
            box["result"] = yield from gen
        except Exception as exc:  # noqa: BLE001 - tests inspect the error
            box["error"] = exc

    env.process(proc())
    env.run()
    return box


class FakeNetwork:
    """Just enough of FlowNetwork for the transfer stage."""

    def __init__(self, env, duration_s=1.0):
        self.env = env
        self.duration_s = duration_s
        self.flows = []
        self.pokes = 0

    def transfer(self, route, size_mb, label=""):
        self.flows.append((route, size_mb, label))
        return SimpleNamespace(done=self.env.timeout(self.duration_s))

    def poke(self):
        self.pokes += 1


def test_commit_result_is_returned_and_traced():
    env = Environment()
    tracer = RequestTracer()
    pipe = RequestPipeline(env, _rng(), service="svc", tracer=tracer)
    box = drive(env, pipe.execute("svc.op", commit=lambda: "payload"))
    assert box["result"] == "payload"
    assert tracer.total == 1 and tracer.errors == 0
    (trace,) = tracer.records()
    assert trace.service == "svc" and trace.op == "svc.op"
    assert trace.ok and trace.latency_s == 0.0


def test_base_latency_draw_is_fixed_plus_jitter():
    env = Environment()
    tracer = RequestTracer()
    pipe = RequestPipeline(
        env,
        _rng(),
        service="svc",
        latency=LatencyProfile(fixed_frac=0.8, jitter_frac=0.2),
        tracer=tracer,
    )
    drive(env, pipe.execute("svc.op", base_latency_s=1.0))
    (trace,) = tracer.records()
    # At least the fixed floor, plus a nonnegative exponential draw.
    assert trace.base_latency_s >= 0.8
    assert env.now == pytest.approx(trace.base_latency_s)


def test_lazy_op_evaluates_after_base_latency():
    from repro.storage import PartitionServer

    env = Environment()
    server = PartitionServer(env, _rng(1), frontend_c_s=0.0)
    pipe = RequestPipeline(
        env, _rng(), service="svc", router=lambda key: server
    )
    seen = []

    def make_spec():
        seen.append(env.now)
        return OpSpec(name="op", cpu_s=0.1, deterministic=True)

    drive(
        env,
        pipe.execute("svc.op", make_spec, base_latency_s=1.0, route="k"),
    )
    # The spec was built after the latency delay, not at call time.
    assert len(seen) == 1 and seen[0] >= 0.8


def test_routed_op_measures_queue_wait():
    from repro.storage import PartitionServer

    env = Environment()
    tracer = RequestTracer()
    server = PartitionServer(env, _rng(1), frontend_c_s=0.0)
    pipe = RequestPipeline(
        env, _rng(), service="svc", router=lambda key: server, tracer=tracer
    )
    op = OpSpec(name="w", exclusive_s=1.0, latch_key="k", deterministic=True)
    for _ in range(2):
        env.process(pipe.execute("svc.w", op, route="k"))
    env.run()
    first, second = tracer.records()
    assert first.queue_wait_s == pytest.approx(0.0)
    # The second request sat on the latch while the first held it.
    assert second.queue_wait_s == pytest.approx(1.0)
    assert second.server_s == pytest.approx(2.0)


def test_route_without_router_raises():
    env = Environment()
    pipe = RequestPipeline(env, _rng(), service="svc")
    box = drive(env, pipe.execute("svc.op", route="k"))
    assert isinstance(box["error"], ValueError)


def test_routed_op_requires_spec():
    env = Environment()
    pipe = RequestPipeline(
        env, _rng(), service="svc", router=lambda key: None
    )
    box = drive(env, pipe.execute("svc.op", None, route="k"))
    assert isinstance(box["error"], ValueError)


def test_transfer_runs_flow_with_connection_accounting():
    env = Environment()
    tracer = RequestTracer()
    network = FakeNetwork(env, duration_s=2.0)
    pipe = RequestPipeline(
        env, _rng(), service="svc", network=network, tracer=tracer
    )
    conns = []
    spec = TransferSpec(
        route=("a", "b"),
        size_mb=64.0,
        label="xfer",
        acquire=lambda: conns.append("+"),
        release=lambda: conns.append("-"),
    )
    drive(env, pipe.execute("svc.get", transfer=lambda: spec))
    assert network.flows == [(("a", "b"), 64.0, "xfer")]
    assert conns == ["+", "-"]
    assert network.pokes == 1
    (trace,) = tracer.records()
    assert trace.transfer_s == pytest.approx(2.0)
    assert trace.size_mb == 64.0


def test_transfer_without_network_raises():
    env = Environment()
    pipe = RequestPipeline(env, _rng(), service="svc")
    box = drive(
        env,
        pipe.execute(
            "svc.get", transfer=TransferSpec(route=("a",), size_mb=1.0)
        ),
    )
    assert isinstance(box["error"], ValueError)


def test_failed_request_traces_outcome_and_reraises():
    env = Environment()
    tracer = RequestTracer()
    pipe = RequestPipeline(env, _rng(), service="svc", tracer=tracer)

    def bad_commit():
        raise KeyError("nope")

    box = drive(env, pipe.execute("svc.op", commit=bad_commit))
    assert isinstance(box["error"], KeyError)
    assert tracer.total == 1 and tracer.errors == 1
    (trace,) = tracer.records()
    assert trace.outcome == "KeyError" and not trace.ok


def test_precheck_runs_before_routing():
    env = Environment()
    order = []
    pipe = RequestPipeline(
        env,
        _rng(),
        service="svc",
        router=lambda key: order.append("route"),
    )

    def precheck():
        order.append("precheck")
        raise RuntimeError("reject early")

    box = drive(env, pipe.execute("svc.op", precheck=precheck, route="k"))
    assert isinstance(box["error"], RuntimeError)
    assert order == ["precheck"]


def test_fault_injector_read_from_owner():
    env = Environment()
    owner = SimpleNamespace(fault_injector=None)
    pipe = RequestPipeline(env, _rng(), service="svc", owner=owner)
    assert pipe.fault_injector is None
    sentinel = object()
    owner.fault_injector = sentinel
    assert pipe.fault_injector is sentinel


def test_work_stage_advances_clock():
    env = Environment()
    tracer = RequestTracer()
    pipe = RequestPipeline(env, _rng(), service="svc", tracer=tracer)
    drive(env, pipe.execute("svc.copy", work_s=3.5))
    assert env.now == pytest.approx(3.5)
    (trace,) = tracer.records()
    assert trace.latency_s == pytest.approx(3.5)
