"""Tests for the 2009/2010 Azure cost model."""

import pytest

from repro import costs
from repro.modis import ModisAzureApp, ModisConfig


def test_paper_anchor_gb_month_vs_vm_hour():
    """Section 5.1: storing 1 GB for a month costs about the same as
    running a small VM for an hour."""
    assert costs.gb_month_vs_vm_hour() == pytest.approx(1.0, abs=0.35)


def test_vm_hours_cost_scales_with_size():
    small = costs.vm_hours_cost(10.0, "small")
    xl = costs.vm_hours_cost(10.0, "extralarge")
    assert xl == pytest.approx(8 * small)
    assert small == pytest.approx(1.2)


def test_vm_hours_validation():
    with pytest.raises(ValueError):
        costs.vm_hours_cost(-1.0)
    with pytest.raises(ValueError):
        costs.vm_hours_cost(1.0, "gargantuan")


def test_storage_and_transaction_costs():
    assert costs.storage_cost(10.0, 2.0) == pytest.approx(3.0)
    assert costs.transaction_cost(1_000_000) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        costs.storage_cost(-1.0, 1.0)
    with pytest.raises(ValueError):
        costs.transaction_cost(-5)


def test_reuse_breakeven_matches_paper_rule():
    """A product that takes >= 1 VM-hour per GB to recompute is worth
    storing for a month (Section 5.1)."""
    advice = costs.reuse_breakeven(product_gb=1.0, recompute_vm_hours=1.0)
    assert advice.store_if_reused_within_month
    assert advice.breakeven_months == pytest.approx(0.8, abs=0.4)

    # Cheap-to-recompute products should NOT be stored for long.
    cheap = costs.reuse_breakeven(product_gb=10.0, recompute_vm_hours=0.1)
    assert not cheap.store_if_reused_within_month


def test_reuse_breakeven_validation():
    with pytest.raises(ValueError):
        costs.reuse_breakeven(0.0, 1.0)
    with pytest.raises(ValueError):
        costs.reuse_breakeven(1.0, -1.0)


def test_cost_breakdown_total_and_str():
    breakdown = costs.CostBreakdown(
        compute=10.0, storage=2.0, transactions=0.5, bandwidth=1.5
    )
    assert breakdown.total == pytest.approx(14.0)
    assert "$14.00" in str(breakdown)


def test_campaign_cost_magnitudes():
    result = ModisAzureApp(ModisConfig(
        seed=2, target_executions=8000, campaign_days=30,
    )).run()
    breakdown = costs.campaign_cost(result, fleet_size=200)
    # 200 small VMs x 30 days x $0.12 ~= $17k of compute.
    assert breakdown.compute == pytest.approx(
        200 * 30 * 24 * 0.12, rel=0.01
    )
    assert breakdown.compute > breakdown.storage > 0
    assert breakdown.transactions > 0
    assert breakdown.total > breakdown.compute


def test_wasted_compute_cost_nonnegative():
    result = ModisAzureApp(ModisConfig(
        seed=5, target_executions=8000, campaign_days=60,
    )).run()
    wasted = costs.wasted_compute_cost(result)
    assert wasted >= 0.0
    breakdown = costs.campaign_cost(result)
    assert wasted < breakdown.compute  # sanity: waste is a small slice
