"""Unit tests for stats, tables and shape-check helpers."""

import numpy as np
import pytest

from repro.analysis import ShapeCheck, ascii_table, format_series, summarize


def test_summarize_matches_numpy():
    xs = [3.0, 1.0, 4.0, 1.0, 5.0]
    s = summarize(xs)
    assert s.count == 5
    assert s.mean == pytest.approx(np.mean(xs))
    assert s.std == pytest.approx(np.std(xs))
    assert s.minimum == 1.0 and s.maximum == 5.0
    assert s.p50 == pytest.approx(np.percentile(xs, 50))
    assert "mean" in str(s)


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


def test_ascii_table_alignment_and_na():
    out = ascii_table(
        ["name", "value"],
        [["alpha", 1.5], ["beta", None], ["gamma", 12345.678]],
        title="demo",
    )
    lines = out.splitlines()
    assert lines[0] == "demo"
    assert "N/A" in out
    assert "12,346" in out
    # All rows align to the same width.
    assert len({len(line) for line in lines[1:]}) == 1


def test_ascii_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        ascii_table(["a", "b"], [[1]])


def test_format_series_bars_scale():
    out = format_series([1, 2], [10.0, 20.0], width=10)
    lines = out.splitlines()
    assert lines[-1].count("#") == 10
    assert lines[-2].count("#") == 5


def test_format_series_validation():
    with pytest.raises(ValueError):
        format_series([1], [1.0, 2.0])
    with pytest.raises(ValueError):
        format_series([], [])


def test_shapecheck_within():
    sc = ShapeCheck()
    assert sc.check_within("x", 105.0, 100.0, rel_tol=0.10)
    assert not sc.check_within("y", 150.0, 100.0, rel_tol=0.10)
    assert not sc.all_passed
    assert "[PASS] x" in sc.render()
    assert "[FAIL] y" in sc.render()
    with pytest.raises(AssertionError):
        sc.assert_all()


def test_shapecheck_ratio():
    sc = ShapeCheck()
    assert sc.check_ratio("half", 5.0, 10.0, expected_ratio=0.5, rel_tol=0.1)
    assert not sc.check_ratio("bad", 9.0, 10.0, expected_ratio=0.5, rel_tol=0.1)
    assert not sc.check_ratio("zero", 1.0, 0.0, expected_ratio=1.0, rel_tol=0.1)


def test_shapecheck_monotone():
    sc = ShapeCheck()
    assert sc.check_monotone("down", [10.0, 8.0, 5.0], decreasing=True)
    assert sc.check_monotone("up", [1.0, 2.0, 3.0])
    assert sc.check_monotone(
        "noisy-down", [10.0, 10.4, 5.0], decreasing=True, slack=0.05
    )
    assert not sc.check_monotone("not-down", [10.0, 12.0], decreasing=True)
    assert sc.results[-1].passed is False


def test_shapecheck_assert_all_passes_quietly():
    sc = ShapeCheck()
    sc.check("fine", True)
    sc.assert_all()
