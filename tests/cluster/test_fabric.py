"""Unit tests for lifecycle timing and the fabric controller."""

import numpy as np
import pytest

from repro import calibration as cal
from repro.cluster import (
    FabricController,
    LifecycleTimingModel,
    VMState,
)
from repro.cluster.fabric import StartupFailureError
from repro.simcore import Environment, RandomStreams


def _rng(seed=0):
    return RandomStreams(seed).stream("fabric")


def _controller(env, seed=0, inject_failures=False):
    return FabricController(env, _rng(seed), inject_failures=inject_failures)


def _drive(env, gen):
    box = {}

    def proc(env):
        try:
            box["result"] = yield from gen
        except Exception as exc:  # noqa: BLE001 - test harness
            box["error"] = exc

    env.process(proc(env))
    env.run()
    return box.get("result"), box.get("error")


# -- timing model ----------------------------------------------------------

def test_timing_anchors_match_table1_means():
    model = LifecycleTimingModel(_rng())
    samples = [
        model.ready_times("worker", "small", 1)[0] for _ in range(600)
    ]
    mean, std = np.mean(samples), np.std(samples)
    assert mean == pytest.approx(533, rel=0.05)
    assert std == pytest.approx(36, rel=0.5)


def test_web_roles_start_slower_than_worker_roles():
    model = LifecycleTimingModel(_rng())
    worker = np.mean([model.ready_times("worker", "small", 1)[0] for _ in range(300)])
    web = np.mean([model.ready_times("web", "small", 1)[0] for _ in range(300)])
    assert 20 <= web - worker <= 110  # paper: 20-60 s longer


def test_larger_sizes_start_slower():
    model = LifecycleTimingModel(_rng())
    small = np.mean([model.ready_times("worker", "small", 1)[0] for _ in range(200)])
    xl = np.mean([model.ready_times("worker", "extralarge", 1)[0] for _ in range(200)])
    assert xl > small + 150


def test_instance_stagger_about_four_minutes_first_to_fourth():
    model = LifecycleTimingModel(_rng())
    lags = []
    for _ in range(300):
        times = model.ready_times("worker", "small", 4)
        lags.append(times[3] - times[0])
    assert np.mean(lags) == pytest.approx(240, rel=0.15)  # observation (3)


def test_create_duration_scales_with_package_size():
    model = LifecycleTimingModel(_rng())
    small_pkg = np.mean(
        [model.create_duration("worker", "small", 1.2) for _ in range(300)]
    )
    big_pkg = np.mean(
        [model.create_duration("worker", "small", 5.0) for _ in range(300)]
    )
    # Observation (5): a 1.2 MB package starts ~30 s faster than 5 MB.
    assert big_pkg - small_pkg == pytest.approx(30.0, rel=0.25)


def test_timing_unknown_combo_raises():
    model = LifecycleTimingModel(_rng())
    with pytest.raises(ValueError):
        model.ready_times("worker", "huge", 1)
    with pytest.raises(ValueError):
        model.ready_times("worker", "small", 0)


def test_startup_failure_rate_close_to_paper():
    model = LifecycleTimingModel(_rng())
    fails = sum(model.startup_fails() for _ in range(20_000))
    assert fails / 20_000 == pytest.approx(cal.VM_STARTUP_FAILURE_RATE, rel=0.2)


# -- fabric controller -------------------------------------------------------

def test_full_lifecycle_happy_path():
    env = Environment()
    fabric = _controller(env)

    def scenario(env):
        dep = yield from fabric.create_deployment("worker", "small", 4)
        assert all(vm.state is VMState.STOPPED for vm in dep.instances)
        yield from fabric.run(dep)
        assert len(dep.ready_instances) == 4
        added = yield from fabric.add_instances(dep, 4)
        assert len(added) == 4
        assert len(dep.ready_instances) == 8
        yield from fabric.suspend(dep)
        assert not dep.ready_instances
        yield from fabric.delete(dep)
        assert dep.deleted
        return dep

    dep, err = _drive(env, scenario(env))
    assert err is None
    assert set(dep.phase_log) == {"create", "run", "add", "suspend", "delete"}
    assert dep.phase_log["run"].duration_s > 60
    assert dep.phase_log["delete"].duration_s < 60
    # Instance ready offsets are recorded in sorted order.
    readies = dep.phase_log["run"].instance_ready_s
    assert readies == sorted(readies) and len(readies) == 4
    assert dep.phase_log["run"].all_ready_s >= dep.phase_log["run"].duration_s


def test_add_requires_running_deployment():
    env = Environment()
    fabric = _controller(env)

    def scenario(env):
        dep = yield from fabric.create_deployment("worker", "small", 2)
        yield from fabric.add_instances(dep, 2)

    _, err = _drive(env, scenario(env))
    assert isinstance(err, ValueError)


def test_delete_requires_suspend_first():
    env = Environment()
    fabric = _controller(env)

    def scenario(env):
        dep = yield from fabric.create_deployment("worker", "small", 1)
        yield from fabric.run(dep)
        yield from fabric.delete(dep)

    _, err = _drive(env, scenario(env))
    assert isinstance(err, ValueError)


def test_operations_on_deleted_deployment_fail():
    env = Environment()
    fabric = _controller(env)

    def scenario(env):
        dep = yield from fabric.create_deployment("worker", "small", 1)
        yield from fabric.run(dep)
        yield from fabric.suspend(dep)
        yield from fabric.delete(dep)
        yield from fabric.run(dep)

    _, err = _drive(env, scenario(env))
    assert isinstance(err, ValueError)


def test_startup_failure_raises_and_counts():
    env = Environment()
    # Force the failure path deterministically.
    fabric = _controller(env, inject_failures=True)
    fabric.timing.startup_fails = lambda: True

    def scenario(env):
        dep = yield from fabric.create_deployment("worker", "small", 2)
        yield from fabric.run(dep)

    _, err = _drive(env, scenario(env))
    assert isinstance(err, StartupFailureError)
    assert fabric.startup_failures == 1


def test_create_validation():
    env = Environment()
    fabric = _controller(env)
    with pytest.raises(ValueError):
        next(fabric.create_deployment("worker", "small", 0))


def test_web_suspend_slower_than_worker():
    means = {}
    for role in ("web", "worker"):
        durations = []
        for seed in range(40):
            env = Environment()
            fabric = _controller(env, seed=seed)

            def scenario(env, fabric=fabric, role=role):
                dep = yield from fabric.create_deployment(role, "small", 1)
                yield from fabric.run(dep)
                yield from fabric.suspend(dep)
                return dep.phase_log["suspend"].duration_s

            duration, err = _drive(env, scenario(env))
            assert err is None
            durations.append(duration)
        means[role] = np.mean(durations)
    # Table 1: web ~86-96 s vs worker ~35-42 s.
    assert means["web"] > means["worker"] * 1.6
