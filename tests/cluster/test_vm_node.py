"""Unit tests for VM state machine, sizes, nodes and placement."""

import pytest

from repro.cluster import Node, PackPlacement, SpreadPlacement, VMInstance, VMState
from repro.cluster.placement import make_nodes
from repro.cluster.sizes import VM_SIZES, get_size
from repro.network import Datacenter
from repro.simcore import RandomStreams


def test_sizes_registry():
    assert set(VM_SIZES) == {"small", "medium", "large", "extralarge"}
    assert get_size("small").cores == 1
    assert get_size("extralarge").cores == 8
    with pytest.raises(ValueError):
        get_size("gigantic")


def test_vm_state_machine_allows_lifecycle():
    vm = VMInstance("worker", get_size("small"), deployment_id=0)
    for state in (
        VMState.CREATING, VMState.STOPPED, VMState.STARTING,
        VMState.READY, VMState.SUSPENDING, VMState.STOPPED,
        VMState.DELETED,
    ):
        vm.set_state(state)
    assert vm.state is VMState.DELETED


def test_vm_state_machine_rejects_illegal_transition():
    vm = VMInstance("worker", get_size("small"), deployment_id=0)
    with pytest.raises(ValueError):
        vm.set_state(VMState.READY)  # REQUESTED -> READY is illegal


def test_vm_role_validation():
    with pytest.raises(ValueError):
        VMInstance("database", get_size("small"), deployment_id=0)


def test_vm_network_requires_placement():
    vm = VMInstance("worker", get_size("small"), deployment_id=0)
    with pytest.raises(RuntimeError):
        vm.nic_tx


def test_vm_compute_time_scales_with_slowdown():
    vm = VMInstance("worker", get_size("small"), deployment_id=0)
    assert vm.compute_time(10.0) == 10.0
    assert not vm.is_degraded
    vm.slowdown = 4.5
    assert vm.compute_time(10.0) == 45.0
    assert vm.is_degraded


def test_node_core_accounting():
    dc = Datacenter(racks=1, hosts_per_rack=1)
    node = Node(dc.hosts[0], cores=8)
    small = VMInstance("worker", get_size("small"), 0)
    xl = VMInstance("worker", get_size("extralarge"), 0)
    node.attach(small)
    assert node.free_cores == 7
    assert not node.can_host(xl)
    with pytest.raises(ValueError):
        node.attach(xl)
    node.detach(small)
    assert node.free_cores == 8
    node.attach(xl)
    assert node.free_cores == 0


def test_node_detach_unknown_vm():
    dc = Datacenter(racks=1, hosts_per_rack=1)
    node = Node(dc.hosts[0])
    with pytest.raises(ValueError):
        node.detach(VMInstance("worker", get_size("small"), 0))


def test_vm_nics_are_hosts():
    dc = Datacenter(racks=1, hosts_per_rack=1)
    node = Node(dc.hosts[0])
    vm = VMInstance("worker", get_size("small"), 0)
    node.attach(vm)
    assert vm.nic_tx is dc.hosts[0].nic_tx
    assert vm.nic_rx is dc.hosts[0].nic_rx


def test_pack_placement_fills_racks_in_order():
    dc = Datacenter(racks=4, hosts_per_rack=2)
    nodes = make_nodes(dc, cores_per_node=8)
    policy = PackPlacement(nodes)
    vms = [VMInstance("worker", get_size("small"), 0) for _ in range(20)]
    for vm in vms:
        policy.place(vm)
    # 20 small VMs pack into the first 3 nodes (8+8+4) -> at most 2 racks.
    racks_used = {vm.node.rack_index for vm in vms}
    assert len(racks_used) <= 2


def test_pack_placement_jitter_rotates_start():
    dc = Datacenter(racks=4, hosts_per_rack=2)
    nodes = make_nodes(dc)
    rng = RandomStreams(3).stream("placement")
    starts = set()
    for _ in range(12):
        policy = PackPlacement(nodes, jitter_rng=rng)
        starts.add(policy._order[0].rack_index)
    assert len(starts) > 1  # start rack varies


def test_spread_placement_uses_all_racks():
    dc = Datacenter(racks=4, hosts_per_rack=2)
    nodes = make_nodes(dc)
    policy = SpreadPlacement(nodes)
    vms = [VMInstance("worker", get_size("small"), 0) for _ in range(8)]
    for vm in vms:
        policy.place(vm)
    racks_used = {vm.node.rack_index for vm in vms}
    assert len(racks_used) == 4


def test_placement_capacity_exhaustion():
    dc = Datacenter(racks=1, hosts_per_rack=1)
    nodes = make_nodes(dc, cores_per_node=8)
    policy = PackPlacement(nodes)
    policy.place(VMInstance("worker", get_size("extralarge"), 0))
    with pytest.raises(RuntimeError):
        policy.place(VMInstance("worker", get_size("small"), 0))
    assert policy.free_cores() == 0


def test_placement_validation():
    with pytest.raises(ValueError):
        PackPlacement([])
