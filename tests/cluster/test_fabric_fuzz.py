"""Property/fuzz tests: the fabric never corrupts deployment state."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import FabricController, VMState
from repro.simcore import Environment, RandomStreams

#: Abstract operations a management client might attempt in any order.
OPS = ("run", "add", "suspend", "delete")


@given(
    ops=st.lists(st.sampled_from(OPS), min_size=1, max_size=12),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=60, deadline=None)
def test_property_arbitrary_op_sequences_never_corrupt_state(ops, seed):
    """Driving a deployment with random (often illegal) operation
    sequences raises clean ValueErrors but never corrupts the state
    machine: instance states always remain mutually consistent."""
    env = Environment()
    fabric = FabricController(
        env, RandomStreams(seed).stream("fuzz"), inject_failures=False
    )
    log = []

    def driver(env):
        deployment = yield from fabric.create_deployment("worker", "small", 2)
        for op in ops:
            try:
                if op == "run":
                    yield from fabric.run(deployment)
                elif op == "add":
                    yield from fabric.add_instances(deployment, 2)
                elif op == "suspend":
                    yield from fabric.suspend(deployment)
                else:
                    yield from fabric.delete(deployment)
            except ValueError as exc:
                log.append(("rejected", op, str(exc)))
            # Invariants that must hold after every step:
            states = [vm.state for vm in deployment.instances]
            if deployment.deleted:
                assert all(s is VMState.DELETED for s in states)
            else:
                assert VMState.DELETED not in states
                # No instance is ever both placed and deleted, and core
                # accounting can never go negative.
                for vm in deployment.instances:
                    if vm.node is not None:
                        assert vm in vm.node.vms
                        assert vm.node.free_cores >= 0

    env.process(driver(env))
    env.run()
