"""Unit tests for the host degradation model (Fig. 7 mechanism)."""

import numpy as np
import pytest

from repro.cluster import DegradationModel, VMInstance
from repro.cluster.degradation import SECONDS_PER_DAY
from repro.cluster.sizes import get_size
from repro.simcore import Environment, RandomStreams


def _model(env=None, seed=0, **kw):
    env = env or Environment()
    return DegradationModel(env, RandomStreams(seed).stream("degrade"), **kw)


def _fleet(n):
    return [VMInstance("worker", get_size("small"), 0) for _ in range(n)]


def test_daily_fraction_memoized():
    m = _model()
    assert m.daily_fraction(3) == m.daily_fraction(3)


def test_most_days_near_zero_some_epidemic():
    m = _model(seed=7)
    fracs = np.array([m.daily_fraction(d) for d in range(400)])
    assert np.median(fracs) < 0.01          # typical day: sub-percent
    assert fracs.max() > 0.02               # some epidemic days
    assert fracs.max() <= 0.5
    epidemic_days = sum(m.is_epidemic_day(d) for d in range(400))
    assert 10 <= epidemic_days <= 70        # ~8% of days


def test_degraded_count_stochastic_rounding_unbiased():
    m = _model(seed=1)
    m._daily_fraction[0] = 0.005  # 1.0 expected out of 200
    m._epidemic[0] = False
    counts = [m.degraded_count(0, 200) for _ in range(4000)]
    assert np.mean(counts) == pytest.approx(1.0, rel=0.15)


def test_apply_day_marks_requested_fraction():
    m = _model(seed=2)
    m._daily_fraction[0] = 0.10
    m._epidemic[0] = True
    fleet = _fleet(200)
    slow = m.apply_day(0, fleet)
    assert len(slow) in (20, 21)
    assert all(vm.slowdown > 4.0 for vm in slow)
    healthy = [vm for vm in fleet if vm not in slow]
    assert all(vm.slowdown == 1.0 for vm in healthy)


def test_apply_day_resets_previous_day():
    m = _model(seed=3)
    fleet = _fleet(50)
    m._daily_fraction[0], m._epidemic[0] = 0.2, True
    m._daily_fraction[1], m._epidemic[1] = 0.0, False
    m.apply_day(0, fleet)
    assert any(vm.is_degraded for vm in fleet)
    m.apply_day(1, fleet)
    assert not any(vm.is_degraded for vm in fleet)


def test_run_process_flips_on_day_boundaries():
    env = Environment()
    m = _model(env=env, seed=4)
    # Force: day 0 clean, day 1 fully epidemic.
    m._daily_fraction[0], m._epidemic[0] = 0.0, False
    m._daily_fraction[1], m._epidemic[1] = 0.3, True
    fleet = _fleet(40)
    env.process(m.run(fleet))
    env.run(until=SECONDS_PER_DAY * 0.5)
    assert not any(vm.is_degraded for vm in fleet)
    env.run(until=SECONDS_PER_DAY * 1.5)
    assert sum(vm.is_degraded for vm in fleet) == 12


def test_validation():
    env = Environment()
    rng = RandomStreams(0).stream("x")
    with pytest.raises(ValueError):
        DegradationModel(env, rng, slowdown=1.0)
    with pytest.raises(ValueError):
        DegradationModel(env, rng, epidemic_rate=1.5)


def test_long_run_average_matches_table2_order_of_magnitude():
    """Volume-weighted (uniform) expected degraded fraction should be in
    the 0.1%-1% band so the Table-2 aggregate (0.17%) is reachable once
    epidemic days carry less volume."""
    m = _model(seed=9)
    fracs = np.array([m.daily_fraction(d) for d in range(2000)])
    assert 0.001 <= fracs.mean() <= 0.01
