"""Tests for the failure-domain hierarchy and correlated domain faults."""

import pytest

from repro.cluster.domains import (
    DOMAIN_KINDS,
    FailureDomain,
    register_account,
    register_datacenter,
)
from repro.faults import DomainFault, DomainFaultInjector
from repro.network import FlowNetwork, Link
from repro.network.topology import Datacenter
from repro.simcore import Environment, RandomStreams
from repro.storage import StorageAccount
from repro.storage.errors import ConnectionFailureError


def _tree():
    root = FailureDomain("world", "world")
    region = FailureDomain("region-a", "region", parent=root)
    zone = FailureDomain("zone-a", "zone", parent=region)
    rack = FailureDomain("rack-a1", "rack", parent=zone)
    return root, region, zone, rack


# -- hierarchy bookkeeping ---------------------------------------------------

def test_kind_validation():
    with pytest.raises(ValueError):
        FailureDomain("x", "continent")
    for kind in DOMAIN_KINDS:
        FailureDomain(f"ok-{kind}", kind)


def test_duplicate_names_rejected_within_a_tree():
    root, _, zone, _ = _tree()
    with pytest.raises(ValueError):
        FailureDomain("rack-a1", "rack", parent=zone)
    # Separate trees keep separate registries.
    other = FailureDomain("world-2", "world")
    FailureDomain("rack-a1", "rack", parent=other)
    assert root.find("rack-a1") is not other.find("rack-a1")


def test_find_from_any_vertex_and_unknown_name():
    root, region, zone, rack = _tree()
    assert rack.find("region-a") is region
    assert zone.find("world") is root
    with pytest.raises(KeyError):
        root.find("rack-b9")


def test_ancestors_and_walk():
    root, region, zone, rack = _tree()
    assert [d.name for d in rack.ancestors()] == [
        "zone-a", "region-a", "world",
    ]
    assert [d.name for d in root.walk()] == [
        "world", "region-a", "zone-a", "rack-a1",
    ]


def test_subtree_aggregation_in_document_order():
    root, region, zone, rack = _tree()
    zone.register_server("zone-server")
    rack.register_server("rack-server")
    rack.register_link("rack-link")
    region.register_link("region-link")
    assert root.all_servers() == ["zone-server", "rack-server"]
    assert root.all_links() == ["region-link", "rack-link"]
    assert zone.all_servers() == ["zone-server", "rack-server"]
    assert rack.all_servers() == ["rack-server"]


def test_register_datacenter_builds_per_rack_domains():
    root, _, zone, _ = _tree()
    dc = Datacenter(racks=2, hosts_per_rack=2)
    rack_domains = register_datacenter(zone, dc, prefix="dc")
    assert [d.name for d in rack_domains] == ["dc/rack0", "dc/rack1"]
    assert all(d.kind == "rack" for d in rack_domains)
    assert all(d.parent is zone for d in rack_domains)
    # Each rack domain holds its ToR uplink pair + 2 hosts x 2 NICs.
    for rack_domain, rack in zip(rack_domains, dc.racks):
        assert len(rack_domain.links) == 6
        assert rack.uplink_tx in rack_domain.links
        assert rack.hosts[0].nic_rx in rack_domain.links
    assert root.find("dc/rack1") is rack_domains[1]


def test_register_account_registers_all_three_services():
    env = Environment()
    account = StorageAccount(env, RandomStreams(0), name="acct")
    _, _, zone, _ = _tree()
    register_account(zone, account)
    assert zone.servers == [account.blobs, account.tables, account.queues]


def test_domain_tree_is_inert():
    """Building and registering creates no events and draws no RNG."""
    env = Environment()
    root, _, zone, _ = _tree()
    account = StorageAccount(env, RandomStreams(0), name="acct")
    register_account(zone, account)
    DomainFaultInjector(env, root, RandomStreams(1).stream("faults"))
    assert env.now == 0.0
    env.run()
    assert env.now == 0.0


# -- correlated domain faults ------------------------------------------------

def test_domain_fault_validation():
    with pytest.raises(ValueError):
        DomainFault("rack-a1", 0.0, 10.0, "latency_spike")
    with pytest.raises(ValueError):
        DomainFault("rack-a1", 0.0)  # neither duration nor mttr
    with pytest.raises(ValueError):
        DomainFault("rack-a1", 0.0, 10.0, mttr_s=5.0)  # both
    with pytest.raises(ValueError):
        DomainFault("rack-a1", 0.0, -1.0)


def test_schedule_rejects_unknown_domain():
    env = Environment()
    root, _, _, _ = _tree()
    injector = DomainFaultInjector(env, root, RandomStreams(0).stream("f"))
    with pytest.raises(KeyError):
        injector.schedule("rack-xyz", 0.0, 10.0)


def _geo_world(seed=0):
    """A zone with a table service whose two partitions both exist."""
    env = Environment()
    streams = RandomStreams(seed)
    root, _region, zone, rack = _tree()
    account = StorageAccount(env, streams, name="acct")
    account.tables.create_table("t")
    account.tables.server_for("t", "p1")
    account.tables.server_for("t", "p2")
    register_account(rack, account)
    injector = DomainFaultInjector(env, root, streams.stream("faults"))
    return env, root, zone, rack, account, injector


def test_rack_fault_takes_down_all_partition_servers_atomically():
    env, root, zone, rack, account, injector = _geo_world()
    injector.schedule("rack-a1", 10.0, 20.0, "crash_restart")
    servers = account.tables.servers()
    assert len(servers) == 2

    observed = {}

    def watcher(env):
        yield env.timeout(11.0)  # inside the fault
        observed["during"] = [
            s.fault_injector.active_windows(env.now) for s in servers
        ]
        yield env.timeout(25.0)  # t=36, after the repair
        observed["after"] = [
            s.fault_injector.active_windows(env.now) for s in servers
        ]

    env.process(watcher(env))
    env.run()
    # Every member server got a window opened at the same instant...
    assert all(len(active) == 1 for active in observed["during"])
    assert all(
        active[0].start_s == 10.0 and active[0].kind == "crash_restart"
        for active in observed["during"]
    )
    # ...and window expiry is the repair.
    assert all(len(active) == 0 for active in observed["after"])
    assert [e["event"] for e in injector.log] == ["fault", "repair"]
    # Members: the blob service (a direct target) + both table servers.
    assert injector.log[0]["servers"] == 3
    assert injector.log[1]["t"] == 30.0


def test_requests_fail_during_fault_and_succeed_after_repair():
    from repro.client import TableClient
    from repro.resilience.backoff import NO_RETRY
    from repro.storage.table import make_entity

    env, root, zone, rack, account, injector = _geo_world()
    injector.schedule("zone-a", 5.0, 10.0, "blackout")
    client = TableClient(account.tables, retry=NO_RETRY)
    outcomes = {}

    def scenario(env):
        yield env.timeout(6.0)
        try:
            yield from client.insert("t", make_entity("p1", "during"))
        except ConnectionFailureError as exc:
            outcomes["during"] = exc
        yield env.timeout(20.0 - env.now)
        outcomes["after"] = (
            yield from client.insert("t", make_entity("p1", "after"))
        )

    env.process(scenario(env))
    env.run()
    assert isinstance(outcomes["during"], ConnectionFailureError)
    assert outcomes["after"].key == ("p1", "after")


def test_ancestor_fault_covers_descendants_is_down():
    env, root, zone, rack, account, injector = _geo_world()
    injector.schedule("zone-a", 5.0, 10.0)

    probes = {}

    def prober(env):
        probes["before"] = injector.is_down("rack-a1")
        yield env.timeout(7.0)
        probes["during_rack"] = injector.is_down("rack-a1")
        probes["during_zone"] = injector.is_down("zone-a")
        probes["during_region"] = injector.is_down("region-a")
        yield env.timeout(10.0)
        probes["after"] = injector.is_down("rack-a1")

    env.process(prober(env))
    env.run()
    assert probes == {
        "before": False,
        "during_rack": True,      # ancestor zone is down
        "during_zone": True,
        "during_region": False,   # faults do not propagate upward
        "after": False,
    }


def test_link_blackout_stalls_flows_and_repair_resumes():
    env = Environment()
    root, _, zone, rack = _tree()
    net = FlowNetwork(env)
    link = Link("rack.up", 100.0)
    rack.register_link(link)
    injector = DomainFaultInjector(env, root, RandomStreams(0).stream("f"))
    injector.attach_network(net)
    injector.schedule("rack-a1", 0.0, 5.0)

    finished = {}

    def sender(env):
        flow = net.transfer([link], 10.0)  # 0.1 s at full rate
        yield flow.done
        finished["t"] = env.now

    env.process(sender(env))
    env.run()
    # Stalled at the blackout floor for 5 s, then ~0.1 s at full rate.
    assert finished["t"] == pytest.approx(5.1, rel=1e-3)
    assert not injector._down_links


def test_overlapping_faults_keep_links_down_until_last_repair():
    env = Environment()
    root, _, zone, rack = _tree()
    net = FlowNetwork(env)
    link = Link("rack.up", 100.0)
    rack.register_link(link)
    injector = DomainFaultInjector(env, root, RandomStreams(0).stream("f"))
    injector.attach_network(net)
    injector.schedule("rack-a1", 0.0, 5.0)
    injector.schedule("zone-a", 2.0, 6.0)  # repairs at t=8

    finished = {}

    def sender(env):
        flow = net.transfer([link], 10.0)
        yield flow.done
        finished["t"] = env.now

    env.process(sender(env))
    env.run()
    assert finished["t"] == pytest.approx(8.1, rel=1e-3)


def test_mttr_draws_are_deterministic_per_seed():
    def realized_repair(seed):
        env, root, zone, rack, account, injector = _geo_world(seed=seed)
        injector.schedule("rack-a1", 0.0, kind="blackout", mttr_s=120.0)
        env.run()
        assert [e["event"] for e in injector.log] == ["fault", "repair"]
        return injector.log[1]["t"]

    first = realized_repair(7)
    assert first > 0.0
    assert realized_repair(7) == first
    assert realized_repair(8) != first


def test_servers_created_after_fault_fire_join_later_faults_only():
    """Member expansion happens at fault time: a partition server created
    mid-outage is healthy, but a later fault catches it."""
    env, root, zone, rack, account, injector = _geo_world()
    injector.schedule("rack-a1", 0.0, 10.0)
    injector.schedule("rack-a1", 20.0, 10.0)

    counts = {}

    def scenario(env):
        yield env.timeout(5.0)  # mid-first-outage
        late = account.tables.server_for("t", "p9")
        counts["during_first"] = late.fault_injector
        yield env.timeout(25.0 - env.now)  # mid-second-outage
        counts["during_second"] = len(
            late.fault_injector.active_windows(env.now)
        )

    env.process(scenario(env))
    env.run()
    assert counts["during_first"] is None  # untouched by the live fault
    assert counts["during_second"] == 1
    # First fault saw blob + 2 table servers; the second sees the late
    # partition server too.
    assert injector.log[0]["servers"] == 3
    assert injector.log[2]["servers"] == 4
