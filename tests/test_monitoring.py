"""Tests for the monitoring module and its integration points."""

import pytest

from repro.monitoring import Counter, MetricsRegistry, Sampler, render_dashboard
from repro.simcore import Environment


def test_counter_increments_only():
    c = Counter("x")
    c.increment()
    c.increment(4.0)
    assert c.value == 5.0
    with pytest.raises(ValueError):
        c.increment(-1.0)


def test_registry_counters_are_singletons():
    reg = MetricsRegistry()
    reg.counter("ops").increment()
    reg.counter("ops").increment()
    assert reg.counter("ops").value == 2.0


def test_gauges_read_live_values():
    reg = MetricsRegistry()
    state = {"depth": 3}
    reg.register_gauge("queue.depth", lambda: state["depth"])
    assert reg.read_gauge("queue.depth") == 3.0
    state["depth"] = 9
    assert reg.read_gauge("queue.depth") == 9.0
    with pytest.raises(ValueError):
        reg.register_gauge("queue.depth", lambda: 0)
    with pytest.raises(KeyError):
        reg.read_gauge("ghost")


def test_tally_percentiles_in_snapshot():
    reg = MetricsRegistry()
    for v in (0.1, 0.2, 0.3):
        reg.tally("lat").observe(v)
    snap = reg.snapshot()
    # Tallies are histogram-backed: percentiles are within the bucket
    # relative error (~2%), while counts stay exact.
    assert snap["latency_p50:lat"] == pytest.approx(0.2, rel=0.03)
    assert "latency_p95:lat" in snap
    assert snap["latency_p99:lat"] == pytest.approx(0.3, rel=0.03)
    assert snap["latency_count:lat"] == 3
    assert "latency_errors:lat" not in snap
    reg.tally("lat").observe_error()
    assert reg.snapshot()["latency_errors:lat"] == 1


def test_sampler_records_series():
    env = Environment()
    reg = MetricsRegistry()
    state = {"v": 0.0}
    reg.register_gauge("load", lambda: state["v"])
    sampler = Sampler(env, reg, interval_s=10.0)
    sampler.start()

    def ramp(env):
        for i in range(5):
            state["v"] = float(i)
            yield env.timeout(10.0)

    env.process(ramp(env))
    # The sampler ticks before the ramp at shared timestamps (it was
    # started first), so sample k sees the value set at tick k-1; run
    # one interval past the last ramp step to observe its final value.
    env.run(until=55.0)
    series = sampler.series["load"]
    assert len(series) == 6
    assert sampler.peak("load") == 4.0
    with pytest.raises(KeyError):
        sampler.peak("ghost")


def test_sampler_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Sampler(env, MetricsRegistry(), interval_s=0.0)


def test_render_dashboard():
    env = Environment()
    reg = MetricsRegistry()
    reg.counter("requests").increment(42)
    reg.register_gauge("active", lambda: 7)
    sampler = Sampler(env, reg, interval_s=1.0)
    sampler.start()
    env.run(until=3.0)
    out = render_dashboard(reg, title="ops", sampler=sampler)
    assert "ops" in out
    assert "counter:requests" in out and "42" in out
    assert "gauge:active" in out
    assert "peak:active" in out


def test_render_dashboard_empty():
    out = render_dashboard(MetricsRegistry())
    assert "(no metrics)" in out


def test_monitoring_a_live_platform():
    """Wire gauges onto real simulated services."""
    from repro.client import QueueClient
    from repro.simcore import RandomStreams
    from repro.storage import QueueService

    env = Environment()
    svc = QueueService(env, RandomStreams(0).stream("q"))
    svc.create_queue("work")
    reg = MetricsRegistry()
    reg.register_gauge("queue.depth", lambda: svc.queue_length("work"))
    reg.register_gauge(
        "server.active", lambda: svc.server_for("work").active_requests
    )
    sampler = Sampler(env, reg, interval_s=0.5)
    sampler.start()
    client = QueueClient(svc)

    def producer(env):
        for i in range(20):
            yield from client.add("work", i)
            reg.counter("produced").increment()
        yield env.timeout(5.0)
        for _ in range(20):
            msg = yield from client.receive("work")
            yield from client.delete("work", msg, msg.pop_receipt)

    env.process(producer(env))
    env.run(until=30.0)
    assert reg.counter("produced").value == 20
    assert sampler.peak("queue.depth") == 20.0
    assert svc.queue_length("work") == 0


def test_attach_partition_server_gauges():
    from repro.monitoring import attach_partition_server
    from repro.simcore import RandomStreams
    from repro.storage import PartitionServer

    env = Environment()
    server = PartitionServer(
        env, RandomStreams(0).stream("p"), name="tables/t/p"
    )
    reg = MetricsRegistry()
    attach_partition_server(reg, server)
    assert reg.read_gauge("tables/t/p.active") == 0
    assert reg.read_gauge("tables/t/p.inflight_mb") == 0.0
    assert reg.read_gauge("tables/t/p.cpu_queue") == 0


def test_attach_circuit_breaker_gauges_and_transition_counters():
    from repro.monitoring import attach_circuit_breaker
    from repro.resilience.breaker import CircuitBreaker
    from repro.storage.errors import ServerBusyError

    env = Environment()
    chained = []
    breaker = CircuitBreaker(
        env,
        window=4,
        error_threshold=0.5,
        min_volume=2,
        on_transition=lambda now, old, new: chained.append((old, new)),
    )
    reg = MetricsRegistry()
    attach_circuit_breaker(reg, breaker, prefix="b")
    assert reg.read_gauge("b.state") == 0.0  # closed
    assert reg.read_gauge("b.error_rate") == 0.0
    breaker.on_failure(ServerBusyError("busy"))
    breaker.on_failure(ServerBusyError("busy"))
    assert reg.read_gauge("b.state") == 2.0  # open
    assert reg.read_gauge("b.opens") == 1.0
    assert reg.counter("b.transitions.open").value == 1.0
    # The pre-existing callback still fires (chained, not replaced).
    assert chained == [("closed", "open")]
    with pytest.raises(Exception):
        breaker.guard()
    assert reg.read_gauge("b.fast_failures") == 1.0


def test_attach_retry_budget_gauges():
    from repro.monitoring import attach_retry_budget
    from repro.resilience.budget import RetryBudget

    budget = RetryBudget(ratio=0.5, initial_tokens=1.0, max_tokens=10.0)
    reg = MetricsRegistry()
    attach_retry_budget(reg, budget, prefix="rb")
    assert reg.read_gauge("rb.tokens") == pytest.approx(1.0)
    assert budget.try_spend()
    assert not budget.try_spend()
    budget.record_call()
    assert reg.read_gauge("rb.tokens") == pytest.approx(0.5)
    assert reg.read_gauge("rb.granted") == 1.0
    assert reg.read_gauge("rb.shed") == 1.0


def test_attach_request_tracer_gauges():
    from repro.monitoring import attach_request_tracer
    from repro.service.tracing import RequestTrace, RequestTracer

    tracer = RequestTracer()
    reg = MetricsRegistry()
    attach_request_tracer(reg, tracer)
    trace = RequestTrace(
        service="svc", op="get", started_at=0.0, finished_at=1.0,
        outcome="ok",
    )
    tracer.observe(trace)
    tracer.observe_call(
        RequestTrace(
            service="svc", op="get", started_at=0.0, finished_at=2.0,
            outcome="ServerBusyError", retries=2,
        )
    )
    assert reg.read_gauge("requests.total") == 1.0
    assert reg.read_gauge("requests.recorded") == 1.0
    assert reg.read_gauge("requests.client_total") == 1.0
    assert reg.read_gauge("requests.client_errors") == 1.0
    assert reg.read_gauge("requests.retries") == 2.0


def _service_trace(op="get", outcome=None, latency=0.2, service="blob"):
    from repro.service.tracing import OK, RequestTrace

    outcome = OK if outcome is None else outcome

    return RequestTrace(
        service=service, op=op, started_at=0.0, finished_at=latency,
        outcome=outcome,
    )


def test_ingest_request_traces_folds_latencies_and_errors():
    from repro.monitoring import ingest_request_traces
    from repro.service.tracing import RequestTracer

    tracer = RequestTracer()
    for _ in range(4):
        tracer.observe(_service_trace())
    tracer.observe(_service_trace(outcome="ServerBusyError"))
    reg = MetricsRegistry()
    assert ingest_request_traces(reg, tracer) == 5
    assert reg.tally("requests.get").count == 5
    assert reg.tally("requests.get").errors == 1
    assert reg.snapshot()["latency_errors:requests.get"] == 1


def test_ingest_request_traces_clear_after_is_idempotent():
    from repro.monitoring import ingest_request_traces
    from repro.service.tracing import RequestTracer

    tracer = RequestTracer()
    reg = MetricsRegistry()
    tracer.observe(_service_trace())
    tracer.observe(_service_trace())
    assert ingest_request_traces(reg, tracer, clear_after=True) == 2
    # A second scrape with no new traffic adds nothing...
    assert ingest_request_traces(reg, tracer, clear_after=True) == 0
    assert reg.tally("requests.get").count == 2
    # ...and new records are counted exactly once.
    tracer.observe(_service_trace())
    ingest_request_traces(reg, tracer, clear_after=True)
    assert reg.tally("requests.get").count == 3
    # Without the flag, repeated scrapes double-count.
    tracer.observe(_service_trace())
    ingest_request_traces(reg, tracer)
    ingest_request_traces(reg, tracer)
    assert reg.tally("requests.get").count == 5


def test_request_summary_breaks_out_services():
    from repro.monitoring import request_summary
    from repro.service.tracing import RequestTracer

    tracer = RequestTracer()
    tracer.observe(_service_trace(service="blob", op="get"))
    tracer.observe(_service_trace(service="table", op="get",
                                  outcome="ServerBusyError"))
    out = request_summary(tracer)
    lines = [line for line in out.splitlines() if "get" in line]
    assert len(lines) == 2  # one row per (service, op), not merged by op
    assert any("blob" in line for line in lines)
    assert any("table" in line for line in lines)
    assert "(no requests)" in request_summary(RequestTracer())


def test_render_dashboard_shows_tally_error_counts():
    reg = MetricsRegistry()
    reg.tally("lat").observe(0.1)
    reg.tally("lat").observe_error()
    out = render_dashboard(reg)
    assert "latency_count:lat" in out
    assert "latency_errors:lat" in out
    assert "latency_p99:lat" in out


def test_attach_worker_pool_gauges():
    from repro.client import QueueClient
    from repro.modis import FailureModel
    from repro.modis.worker import TASK_QUEUE, WorkerPool
    from repro.monitoring import attach_worker_pool
    from repro.simcore import RandomStreams
    from repro.storage import QueueService

    env = Environment()
    streams = RandomStreams(0)
    qsvc = QueueService(env, streams.stream("q"))
    qsvc.create_queue(TASK_QUEUE)
    pool = WorkerPool(
        env=env,
        queue_client=QueueClient(qsvc),
        monitor=None,
        failure_model=FailureModel(streams.stream("f")),
        rng=streams.stream("j"),
        n_workers=4,
    )
    reg = MetricsRegistry()
    attach_worker_pool(reg, pool)
    assert reg.read_gauge("pool.outstanding") == 0
    pool.workers[0].slowdown = 6.0
    assert reg.read_gauge("pool.degraded_workers") == 1
    assert reg.read_gauge("pool.completed") == 0
