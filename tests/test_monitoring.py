"""Tests for the monitoring module and its integration points."""

import pytest

from repro.monitoring import Counter, MetricsRegistry, Sampler, render_dashboard
from repro.simcore import Environment


def test_counter_increments_only():
    c = Counter("x")
    c.increment()
    c.increment(4.0)
    assert c.value == 5.0
    with pytest.raises(ValueError):
        c.increment(-1.0)


def test_registry_counters_are_singletons():
    reg = MetricsRegistry()
    reg.counter("ops").increment()
    reg.counter("ops").increment()
    assert reg.counter("ops").value == 2.0


def test_gauges_read_live_values():
    reg = MetricsRegistry()
    state = {"depth": 3}
    reg.register_gauge("queue.depth", lambda: state["depth"])
    assert reg.read_gauge("queue.depth") == 3.0
    state["depth"] = 9
    assert reg.read_gauge("queue.depth") == 9.0
    with pytest.raises(ValueError):
        reg.register_gauge("queue.depth", lambda: 0)
    with pytest.raises(KeyError):
        reg.read_gauge("ghost")


def test_tally_percentiles_in_snapshot():
    reg = MetricsRegistry()
    for v in (0.1, 0.2, 0.3):
        reg.tally("lat").observe(v)
    snap = reg.snapshot()
    assert snap["latency_p50:lat"] == pytest.approx(0.2)
    assert "latency_p95:lat" in snap


def test_sampler_records_series():
    env = Environment()
    reg = MetricsRegistry()
    state = {"v": 0.0}
    reg.register_gauge("load", lambda: state["v"])
    sampler = Sampler(env, reg, interval_s=10.0)
    sampler.start()

    def ramp(env):
        for i in range(5):
            state["v"] = float(i)
            yield env.timeout(10.0)

    env.process(ramp(env))
    # The sampler ticks before the ramp at shared timestamps (it was
    # started first), so sample k sees the value set at tick k-1; run
    # one interval past the last ramp step to observe its final value.
    env.run(until=55.0)
    series = sampler.series["load"]
    assert len(series) == 6
    assert sampler.peak("load") == 4.0
    with pytest.raises(KeyError):
        sampler.peak("ghost")


def test_sampler_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Sampler(env, MetricsRegistry(), interval_s=0.0)


def test_render_dashboard():
    env = Environment()
    reg = MetricsRegistry()
    reg.counter("requests").increment(42)
    reg.register_gauge("active", lambda: 7)
    sampler = Sampler(env, reg, interval_s=1.0)
    sampler.start()
    env.run(until=3.0)
    out = render_dashboard(reg, title="ops", sampler=sampler)
    assert "ops" in out
    assert "counter:requests" in out and "42" in out
    assert "gauge:active" in out
    assert "peak:active" in out


def test_render_dashboard_empty():
    out = render_dashboard(MetricsRegistry())
    assert "(no metrics)" in out


def test_monitoring_a_live_platform():
    """Wire gauges onto real simulated services."""
    from repro.client import QueueClient
    from repro.simcore import RandomStreams
    from repro.storage import QueueService

    env = Environment()
    svc = QueueService(env, RandomStreams(0).stream("q"))
    svc.create_queue("work")
    reg = MetricsRegistry()
    reg.register_gauge("queue.depth", lambda: svc.queue_length("work"))
    reg.register_gauge(
        "server.active", lambda: svc.server_for("work").active_requests
    )
    sampler = Sampler(env, reg, interval_s=0.5)
    sampler.start()
    client = QueueClient(svc)

    def producer(env):
        for i in range(20):
            yield from client.add("work", i)
            reg.counter("produced").increment()
        yield env.timeout(5.0)
        for _ in range(20):
            msg = yield from client.receive("work")
            yield from client.delete("work", msg, msg.pop_receipt)

    env.process(producer(env))
    env.run(until=30.0)
    assert reg.counter("produced").value == 20
    assert sampler.peak("queue.depth") == 20.0
    assert svc.queue_length("work") == 0


def test_attach_partition_server_gauges():
    from repro.monitoring import attach_partition_server
    from repro.simcore import RandomStreams
    from repro.storage import PartitionServer

    env = Environment()
    server = PartitionServer(
        env, RandomStreams(0).stream("p"), name="tables/t/p"
    )
    reg = MetricsRegistry()
    attach_partition_server(reg, server)
    assert reg.read_gauge("tables/t/p.active") == 0
    assert reg.read_gauge("tables/t/p.inflight_mb") == 0.0
    assert reg.read_gauge("tables/t/p.cpu_queue") == 0


def test_attach_worker_pool_gauges():
    from repro.client import QueueClient
    from repro.modis import FailureModel
    from repro.modis.worker import TASK_QUEUE, WorkerPool
    from repro.monitoring import attach_worker_pool
    from repro.simcore import RandomStreams
    from repro.storage import QueueService

    env = Environment()
    streams = RandomStreams(0)
    qsvc = QueueService(env, streams.stream("q"))
    qsvc.create_queue(TASK_QUEUE)
    pool = WorkerPool(
        env=env,
        queue_client=QueueClient(qsvc),
        monitor=None,
        failure_model=FailureModel(streams.stream("f")),
        rng=streams.stream("j"),
        n_workers=4,
    )
    reg = MetricsRegistry()
    attach_worker_pool(reg, pool)
    assert reg.read_gauge("pool.outstanding") == 0
    pool.workers[0].slowdown = 6.0
    assert reg.read_gauge("pool.degraded_workers") == 1
    assert reg.read_gauge("pool.completed") == 0
