"""Tests for execution-log persistence and reload analysis."""

import pytest

from repro.modis import ModisAzureApp, ModisConfig
from repro.modis.analysis import failure_breakdown, task_breakdown
from repro.modis.logs import (
    read_execution_log,
    record_from_dict,
    record_to_dict,
    result_from_log,
    write_execution_log,
)
from repro.modis.tasks import ExecutionRecord, TaskKind, TaskOutcome


def _record(**kw):
    defaults = dict(
        task_id=1, kind=TaskKind.REPROJECTION, attempt=1, worker=3,
        started_at=10.0, finished_at=310.0,
        outcome=TaskOutcome.SUCCESS, degraded_worker=False,
    )
    defaults.update(kw)
    return ExecutionRecord(**defaults)


def test_record_roundtrip():
    original = _record(outcome=TaskOutcome.VM_EXECUTION_TIMEOUT,
                       degraded_worker=True)
    restored = record_from_dict(record_to_dict(original))
    assert restored == original


def test_schema_version_enforced():
    data = record_to_dict(_record())
    data["v"] = 99
    with pytest.raises(ValueError):
        record_from_dict(data)


def test_write_and_read_log(tmp_path):
    records = [_record(task_id=i, attempt=1) for i in range(25)]
    path = tmp_path / "campaign.jsonl"
    written = write_execution_log(records, path)
    assert written == 25
    loaded = read_execution_log(path)
    assert loaded == records


def test_malformed_line_reports_location(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"v": 1, "task_id": 1}\n')
    with pytest.raises(ValueError, match="bad.jsonl:1"):
        read_execution_log(path)


def test_reloaded_log_supports_full_analysis(tmp_path):
    result = ModisAzureApp(ModisConfig(
        seed=4, target_executions=8000, campaign_days=40,
    )).run()
    path = tmp_path / "log.jsonl"
    write_execution_log(result.records, path)
    reloaded = result_from_log(path, campaign_days=40)

    assert reloaded.total_executions == result.total_executions
    # Table 2 computed from disk equals Table 2 computed in memory.
    assert task_breakdown(reloaded) == task_breakdown(result)
    assert failure_breakdown(reloaded) == failure_breakdown(result)
    assert reloaded.monitor_kills == sum(
        1 for r in result.records
        if r.outcome is TaskOutcome.VM_EXECUTION_TIMEOUT
    )
