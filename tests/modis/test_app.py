"""Integration tests: the assembled ModisAzure campaign."""

import numpy as np
import pytest

from repro.modis import ModisAzureApp, ModisConfig
from repro.modis.analysis import (
    daily_timeout_series,
    failure_breakdown,
    outcome_rate,
    retry_statistics,
    slowdown_cost_estimate,
    task_breakdown,
)
from repro.modis.tasks import TaskKind, TaskOutcome


def _small_run(seed=3, **kw):
    config = ModisConfig(
        seed=seed,
        target_executions=kw.pop("target_executions", 9000),
        campaign_days=kw.pop("campaign_days", 60),
        **kw,
    )
    return ModisAzureApp(config).run()


def test_campaign_produces_executions_and_completions():
    result = _small_run()
    assert result.total_executions > 5000
    assert result.tasks_completed > 0.8 * len(result.tasks)
    assert result.tasks_abandoned < 0.15 * len(result.tasks)


def test_task_mix_close_to_table2():
    result = _small_run()
    mix = task_breakdown(result)
    assert mix[TaskKind.REPROJECTION][1] == pytest.approx(55.79, abs=3.0)
    assert mix[TaskKind.REDUCTION][1] == pytest.approx(39.36, abs=3.0)
    assert mix[TaskKind.SOURCE_DOWNLOAD][1] == pytest.approx(4.57, abs=1.5)
    assert mix[TaskKind.AGGREGATION][1] == pytest.approx(0.29, abs=0.4)


def test_failure_mix_close_to_table2():
    result = _small_run()
    failures = dict(failure_breakdown(result))
    assert failures[TaskOutcome.SUCCESS][1] == pytest.approx(65.5, abs=3.0)
    assert failures[TaskOutcome.UNKNOWN_FAILURE][1] == pytest.approx(11.3, abs=2.5)
    assert failures[TaskOutcome.BLOB_ALREADY_EXISTS][1] == pytest.approx(
        5.98, abs=2.0
    )


def test_vm_timeouts_emerge_in_the_right_band():
    result = _small_run(seed=5, target_executions=15000, campaign_days=120)
    rate = outcome_rate(result, TaskOutcome.VM_EXECUTION_TIMEOUT)
    # Paper: 0.17% of 3M executions; band allows small-sample noise.
    assert 0.0002 <= rate <= 0.006
    assert result.monitor_kills > 0


def test_daily_timeout_series_spiky_not_flat():
    result = _small_run(seed=7, target_executions=15000, campaign_days=120)
    series = daily_timeout_series(result)
    values = series.values
    assert len(values) == 120
    assert values.max() >= 2.0          # visible spikes
    assert np.median(values) < 1.0      # most days quiet
    assert (values <= 100.0).all()


def test_monitor_disabled_no_vm_timeouts():
    """The legacy queue-visibility-only design (Section 5.2 ablation)."""
    result = _small_run(seed=3, use_monitor=False)
    assert outcome_rate(result, TaskOutcome.VM_EXECUTION_TIMEOUT) == 0.0
    assert result.monitor_kills == 0
    # Degraded executions still happened; they just ran 6x slow.
    degraded = [r for r in result.records if r.degraded_worker]
    if degraded:
        healthy_mean = np.mean(
            [r.duration_s for r in result.records if not r.degraded_worker]
        )
        assert np.mean([r.duration_s for r in degraded]) > 2 * healthy_mean


def test_retry_statistics_exceed_one_for_compute():
    result = _small_run()
    stats = retry_statistics(result)
    assert stats["reprojection"] > 1.05
    assert stats["source_download"] == pytest.approx(1.0, abs=0.01)


def test_slowdown_cost_counts_killed_time():
    result = _small_run(seed=5, target_executions=15000, campaign_days=120)
    wasted = slowdown_cost_estimate(result)
    kills = sum(
        1 for r in result.records
        if r.outcome is TaskOutcome.VM_EXECUTION_TIMEOUT
    )
    if kills:
        # Each kill wasted roughly 4x a nominal duration.
        assert wasted / kills > 500.0


def test_determinism_same_seed_same_log():
    a = _small_run(seed=11, target_executions=4000, campaign_days=30)
    b = _small_run(seed=11, target_executions=4000, campaign_days=30)
    assert a.total_executions == b.total_executions
    assert [r.outcome for r in a.records] == [r.outcome for r in b.records]
    # Task ids are globally counted, so compare id-free signatures.
    assert [(r.kind, r.attempt, r.worker, round(r.started_at, 6))
            for r in a.records] == [
        (r.kind, r.attempt, r.worker, round(r.started_at, 6))
        for r in b.records
    ]


def test_different_seeds_differ():
    a = _small_run(seed=11, target_executions=4000, campaign_days=30)
    b = _small_run(seed=12, target_executions=4000, campaign_days=30)
    assert a.total_executions != b.total_executions or (
        [r.outcome for r in a.records] != [r.outcome for r in b.records]
    )


def test_config_validation():
    with pytest.raises(ValueError):
        ModisAzureApp(ModisConfig(target_executions=10)).run()
