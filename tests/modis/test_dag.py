"""Tests for the structural (Fig. 6) DAG pipeline mode."""

import pytest

from repro.client import QueueClient
from repro.modis import ModisCatalog
from repro.modis.dag import DagRequest, DagServiceManager
from repro.modis.tasks import TaskKind, TaskOutcome
from repro.modis.worker import TASK_QUEUE, WorkerPool
from repro.simcore import Environment, RandomStreams
from repro.storage import QueueService


class _AlwaysSucceed:
    def sample(self, kind):
        return TaskOutcome.SUCCESS


class _AbandonDownloads:
    """Downloads fail deterministically into user-code (terminal)."""

    def sample(self, kind):
        if kind is TaskKind.SOURCE_DOWNLOAD:
            return TaskOutcome.USER_CODE_ERROR
        return TaskOutcome.SUCCESS


def _setup(seed=0, n_workers=16, failure_model=None):
    env = Environment()
    streams = RandomStreams(seed)
    qsvc = QueueService(env, streams.stream("q"))
    qsvc.create_queue(TASK_QUEUE)
    pool = WorkerPool(
        env=env,
        queue_client=QueueClient(qsvc),
        monitor=None,
        failure_model=failure_model or _AlwaysSucceed(),
        rng=streams.stream("jitter"),
        n_workers=n_workers,
    )
    manager = DagServiceManager(
        env, pool, ModisCatalog(), streams.stream("dag")
    )
    return env, pool, manager


def _submit(env, manager, request):
    env.process(manager.submit_request(request))


def test_single_unit_chain_runs_in_order():
    env, pool, manager = _setup()
    request = DagRequest(tiles=[(8, 4)], day_range=(10, 10),
                         aggregation_batch=0)
    _submit(env, manager, request)
    env.run(until=40_000.0)
    assert manager.all_finished
    # download -> reprojection -> reduction, strictly ordered in time.
    by_kind = {r.kind: r for r in pool.records}
    assert set(by_kind) == {
        TaskKind.SOURCE_DOWNLOAD, TaskKind.REPROJECTION, TaskKind.REDUCTION,
    }
    assert (
        by_kind[TaskKind.SOURCE_DOWNLOAD].finished_at
        <= by_kind[TaskKind.REPROJECTION].started_at
    )
    assert (
        by_kind[TaskKind.REPROJECTION].finished_at
        <= by_kind[TaskKind.REDUCTION].started_at
    )


def test_reuse_skips_downloads_and_reprojections():
    env, pool, manager = _setup()
    first = DagRequest(tiles=[(8, 4), (9, 4)], day_range=(0, 4),
                       aggregation_batch=0, with_reduction=False)
    _submit(env, manager, first)
    env.run(until=200_000.0)
    assert manager.all_finished
    issued_before = manager.stats.downloads_issued
    assert issued_before == 10  # 2 tiles x 5 days, cold cache

    # The same region again: everything is cached.
    second = DagRequest(tiles=[(8, 4), (9, 4)], day_range=(0, 4),
                        aggregation_batch=0, with_reduction=False)
    _submit(env, manager, second)
    env.run(until=400_000.0)
    assert manager.stats.downloads_issued == issued_before
    assert manager.stats.downloads_skipped_cached == 0  # skipped whole units
    assert manager.stats.reprojections_skipped_cached == 10


def test_aggregation_batches_feed_reductions():
    env, pool, manager = _setup()
    request = DagRequest(tiles=[(8, 4)], day_range=(0, 15),
                         aggregation_batch=8)
    _submit(env, manager, request)
    env.run(until=400_000.0)
    assert manager.all_finished
    assert manager.stats.aggregations_issued == 2   # 16 units / 8
    assert manager.stats.reductions_issued == 2
    # Aggregations ran only after all their uplinks completed.
    agg_records = [r for r in pool.records if r.kind is TaskKind.AGGREGATION]
    reproj_done = [
        r.finished_at for r in pool.records
        if r.kind is TaskKind.REPROJECTION
    ]
    for agg in agg_records:
        assert agg.started_at >= min(reproj_done)


def test_compute_dominates_after_warmup():
    """Section 5.1/Table 2: reuse makes reprojection+reduction dominate."""
    env, pool, manager = _setup(n_workers=32)
    # Several requests over the same small region, arriving one after
    # another (so later ones see the warmed caches).
    for i in range(6):
        _submit(env, manager, DagRequest(
            tiles=[(8, 4), (8, 5)], day_range=(0, 9),
            aggregation_batch=0,
        ))
        env.run(until=env.now + 500_000.0)
    assert manager.all_finished
    kinds = [r.kind for r in pool.records]
    downloads = kinds.count(TaskKind.SOURCE_DOWNLOAD)
    compute = kinds.count(TaskKind.REPROJECTION) + kinds.count(
        TaskKind.REDUCTION
    )
    assert compute > downloads * 2
    # Only the first request needed downloads for these tiles/days.
    assert manager.stats.downloads_issued == 20


def test_abandoned_upstream_cancels_downstream():
    env, pool, manager = _setup(failure_model=_AbandonDownloads())
    request = DagRequest(tiles=[(8, 4)], day_range=(0, 0),
                         aggregation_batch=0)
    _submit(env, manager, request)
    env.run(until=2_000_000.0)
    assert manager.all_finished
    # Download abandoned (after MAX_ATTEMPTS? no - USER_CODE is terminal
    # immediately), so reprojection and reduction never executed.
    executed_kinds = {r.kind for r in pool.records}
    assert executed_kinds == {TaskKind.SOURCE_DOWNLOAD}
    assert manager.cancelled_tasks == 2


def test_day_range_validation():
    request = DagRequest(tiles=[(8, 4)], day_range=(5, 2))
    with pytest.raises(ValueError):
        request.units()


def test_double_hook_registration_rejected():
    env, pool, manager = _setup()
    with pytest.raises(ValueError):
        DagServiceManager(env, pool, ModisCatalog(),
                          RandomStreams(1).stream("x"))


def test_stats_totals():
    env, pool, manager = _setup()
    request = DagRequest(tiles=[(8, 4)], day_range=(0, 3),
                         aggregation_batch=4)
    _submit(env, manager, request)
    env.run(until=400_000.0)
    s = manager.stats
    assert s.units == 4
    assert s.tasks_issued == len(manager.tasks)
    assert manager.completion_fraction() == 1.0
