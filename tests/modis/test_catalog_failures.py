"""Unit tests for the MODIS catalog and the calibrated failure model."""

import numpy as np
import pytest

from repro import calibration as cal
from repro.modis import FailureModel, ModisCatalog
from repro.modis.failures import distinct_task_mix
from repro.modis.tasks import TaskKind, TaskOutcome
from repro.simcore import RandomStreams


def test_catalog_scale_matches_paper():
    catalog = ModisCatalog()
    # Section 5.1: ~585k files, ~4 TB for 10 years of the continental US.
    assert catalog.total_files == pytest.approx(585_000, rel=0.03)
    assert catalog.total_size_tb == pytest.approx(4.0, rel=0.1)


def test_granule_names_are_stable():
    catalog = ModisCatalog()
    a = catalog.granule((8, 4), 100, 3)
    b = catalog.granule((8, 4), 100, 3)
    assert a.name == b.name
    assert a.size_mb == b.size_mb
    assert 2.0 <= a.size_mb <= 12.5


def test_granules_for_task_typical_count_and_determinism():
    catalog = ModisCatalog()
    files = catalog.granules_for_task((9, 5), 42)
    assert len(files) == 4  # "typically 3-4 source data files"
    again = catalog.granules_for_task((9, 5), 42)
    assert [f.name for f in files] == [f.name for f in again]
    assert len({f.name for f in files}) == 4


def test_catalog_validation():
    catalog = ModisCatalog()
    with pytest.raises(ValueError):
        catalog.granule((99, 99), 0, 0)
    with pytest.raises(ValueError):
        catalog.granule((8, 4), -1, 0)
    with pytest.raises(ValueError):
        catalog.granule((8, 4), 0, 99)
    with pytest.raises(ValueError):
        ModisCatalog(tiles=())


def _model(seed=0):
    return FailureModel(RandomStreams(seed).stream("fail"))


def test_downloads_always_null_log():
    model = _model()
    for _ in range(50):
        assert model.sample(TaskKind.SOURCE_DOWNLOAD) is TaskOutcome.UNKNOWN_NULL_LOG


def test_compute_kind_outcome_rates_match_calibration():
    model = _model()
    n = 40_000
    outcomes = [model.sample(TaskKind.REPROJECTION) for _ in range(n)]
    success = sum(o is TaskOutcome.SUCCESS for o in outcomes) / n
    unknown = sum(o is TaskOutcome.UNKNOWN_FAILURE for o in outcomes) / n
    # Conditioned rates: unknown_failure 11.3% of all / 95.4% compute share.
    assert unknown == pytest.approx(0.1130 / 0.9543, rel=0.1)
    assert success == pytest.approx(
        model.success_probability(TaskKind.REPROJECTION), rel=0.05
    )


def test_user_code_errors_only_on_reduction():
    model = _model()
    reduction = [model.sample(TaskKind.REDUCTION) for _ in range(20_000)]
    reproj = [model.sample(TaskKind.REPROJECTION) for _ in range(20_000)]
    assert any(o is TaskOutcome.USER_CODE_ERROR for o in reduction)
    assert not any(o is TaskOutcome.USER_CODE_ERROR for o in reproj)


def test_vm_timeout_never_injected():
    model = _model()
    for kind in TaskKind:
        outcomes = [model.sample(kind) for _ in range(5000)]
        assert not any(o is TaskOutcome.VM_EXECUTION_TIMEOUT for o in outcomes)


def test_expected_executions_per_task():
    model = _model()
    assert model.expected_executions_per_task(TaskKind.SOURCE_DOWNLOAD) == 1.0
    for kind in (TaskKind.REPROJECTION, TaskKind.REDUCTION):
        m = model.expected_executions_per_task(kind)
        assert 1.0 < m < 1.5


def test_distinct_mix_reproduces_execution_mix():
    """Generating distinct tasks at the derived mix and multiplying by
    expected executions must land on Table 2's execution mix."""
    model = _model()
    mix = distinct_task_mix(model)
    assert sum(mix.values()) == pytest.approx(1.0)
    exec_share = {
        kind: mix[kind] * model.expected_executions_per_task(kind)
        for kind in TaskKind
    }
    total = sum(exec_share.values())
    for kind in TaskKind:
        assert exec_share[kind] / total == pytest.approx(
            cal.MODIS_TASK_MIX[kind.value], rel=0.02
        )


def test_overall_success_rate_close_to_table2():
    """Weighted by the execution mix, success must be ~65.5%."""
    model = _model()
    weighted = sum(
        cal.MODIS_TASK_MIX[kind.value] * model.success_probability(kind)
        for kind in TaskKind
    )
    assert weighted == pytest.approx(cal.MODIS_SUCCESS_RATE, abs=0.02)
