"""The Section 5.2 hazard, end to end.

"we found this to be insufficient in cases where tasks take longer than
the maximum visibility timeout value (2 h) as well as for handling cases
where a task is being executed slowly and allowing another worker to
execute the same task concurrently could cause corrupted output."

With a visibility timeout shorter than a slow task's runtime, the
message reappears and a second worker executes the same task while the
first is still running -- the duplicate the task-status redesign fixed.
"""

import pytest

from repro.client import QueueClient
from repro.modis.tasks import Task, TaskKind, TaskOutcome
from repro.modis.worker import TASK_QUEUE, WorkerPool
from repro.simcore import Environment, RandomStreams
from repro.storage import QueueService


class _AlwaysSucceed:
    def sample(self, kind):
        return TaskOutcome.SUCCESS


def _pool(env, visibility_s, n_workers=3, seed=0):
    streams = RandomStreams(seed)
    qsvc = QueueService(env, streams.stream("q"))
    qsvc.create_queue(TASK_QUEUE)
    return WorkerPool(
        env=env,
        queue_client=QueueClient(qsvc),
        monitor=None,
        failure_model=_AlwaysSucceed(),
        rng=streams.stream("jitter"),
        n_workers=n_workers,
        visibility_timeout_s=visibility_s,
    )


def _run_one_task(visibility_s, duration_s, seed=0):
    env = Environment()
    pool = _pool(env, visibility_s, seed=seed)
    task = Task(kind=TaskKind.REPROJECTION, request_id=1,
                nominal_duration_s=duration_s)

    def submit(env):
        yield from pool.submit(task)

    env.process(submit(env))
    env.run(until=duration_s * 20 + 3600)
    return pool, task


def test_short_visibility_causes_duplicate_execution():
    # Task runs ~1000 s; message reappears after 120 s -> duplicates.
    pool, task = _run_one_task(visibility_s=120.0, duration_s=1000.0)
    executions = [r for r in pool.records if r.task_id == task.id]
    assert len(executions) >= 2, "the Section 5.2 duplicate did not occur"
    # Overlap: a second execution started before the first finished.
    first = min(executions, key=lambda r: r.started_at)
    overlapping = [
        r for r in executions
        if r is not first and r.started_at < first.finished_at
    ]
    assert overlapping, "duplicate executions should overlap in time"
    # The completion guard still counts the task exactly once.
    assert task.completed
    assert pool.tasks_completed == 1


def test_long_visibility_prevents_duplicates():
    pool, task = _run_one_task(visibility_s=7200.0, duration_s=1000.0)
    executions = [r for r in pool.records if r.task_id == task.id]
    assert len(executions) == 1
    assert task.completed


def test_visibility_cap_is_two_hours():
    """The queue service enforces the paper's 2-hour maximum, which is
    why visibility timeouts alone could not cover the longest tasks."""
    env = Environment()
    with pytest.raises(ValueError):
        _pool(env, visibility_s=7200.0).queue_client.service.receive(
            TASK_QUEUE, visibility_timeout_s=7201.0
        ).send(None)
