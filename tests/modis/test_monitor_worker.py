"""Unit tests for the task monitor and worker pool mechanics."""

import pytest

from repro.client import QueueClient
from repro.modis import FailureModel, TaskMonitor
from repro.modis.tasks import Task, TaskKind, TaskOutcome
from repro.modis.worker import TASK_QUEUE, Worker, WorkerPool
from repro.simcore import Environment, Interrupt, RandomStreams
from repro.storage import QueueService


def _pool(env, seed=0, n_workers=4, monitor=None, failure_model=None):
    streams = RandomStreams(seed)
    qsvc = QueueService(env, streams.stream("q"))
    qsvc.create_queue(TASK_QUEUE)
    return WorkerPool(
        env=env,
        queue_client=QueueClient(qsvc),
        monitor=monitor,
        failure_model=failure_model or FailureModel(streams.stream("f")),
        rng=streams.stream("jitter"),
        n_workers=n_workers,
    )


class _AlwaysSucceed:
    def sample(self, kind):
        return TaskOutcome.SUCCESS


class _FailNTimes:
    def __init__(self, n):
        self.remaining = n

    def sample(self, kind):
        if self.remaining > 0:
            self.remaining -= 1
            return TaskOutcome.UNKNOWN_FAILURE
        return TaskOutcome.SUCCESS


def test_monitor_kill_threshold_per_task():
    env = Environment()
    monitor = TaskMonitor(env, multiplier=4.0)
    short = Task(kind=TaskKind.REPROJECTION, request_id=1,
                 nominal_duration_s=300.0)
    long = Task(kind=TaskKind.REPROJECTION, request_id=1,
                nominal_duration_s=900.0)
    proc = env.process(_noop(env))
    monitor.register(short, proc)
    monitor.register(long, proc)
    assert monitor._running[short.id].kill_after_s == pytest.approx(1200.0)
    assert monitor._running[long.id].kill_after_s == pytest.approx(3600.0)


def _noop(env):
    yield env.timeout(1.0)


def test_monitor_kills_slow_execution():
    env = Environment()
    monitor = TaskMonitor(env, multiplier=4.0, sweep_interval_s=10.0)
    monitor.start()
    task = Task(kind=TaskKind.REPROJECTION, request_id=1,
                nominal_duration_s=300.0)
    log = {}

    def victim(env):
        try:
            yield env.timeout(10_000.0)  # way past 4 x 300s
            log["finished"] = True
        except Interrupt as i:
            log["killed_at"] = env.now
            log["cause"] = i.cause

    proc = env.process(victim(env))
    monitor.register(task, proc)
    env.run(until=2000.0)
    assert log["cause"] == "vm_execution_timeout"
    # Killed on the first sweep after 4 x 300 s.
    assert 1200.0 <= log["killed_at"] <= 1220.0
    assert monitor.kills == 1
    assert monitor.running_count == 0


def test_monitor_does_not_kill_healthy_execution():
    env = Environment()
    monitor = TaskMonitor(env, multiplier=4.0, sweep_interval_s=10.0)
    monitor.start()
    task = Task(kind=TaskKind.REPROJECTION, request_id=1,
                nominal_duration_s=100.0)
    log = {}

    def healthy(env):
        yield env.timeout(110.0)
        log["finished_at"] = env.now

    proc = env.process(healthy(env))
    monitor.register(task, proc)
    env.run(until=1000.0)
    assert log["finished_at"] == pytest.approx(110.0)
    assert monitor.kills == 0


def test_monitor_average_updates():
    env = Environment()
    monitor = TaskMonitor(env)
    before = monitor.average(TaskKind.REDUCTION)
    monitor.record_completion(TaskKind.REDUCTION, before * 3)
    after = monitor.average(TaskKind.REDUCTION)
    assert before < after < before * 3


def test_monitor_validation():
    env = Environment()
    with pytest.raises(ValueError):
        TaskMonitor(env, multiplier=1.0)


def test_worker_pool_executes_submitted_task():
    env = Environment()
    pool = _pool(env, failure_model=_AlwaysSucceed())
    task = Task(kind=TaskKind.REPROJECTION, request_id=1,
                nominal_duration_s=60.0)

    def submitter(env):
        yield from pool.submit(task)

    env.process(submitter(env))
    env.run(until=3600.0)
    assert task.completed
    assert pool.tasks_completed == 1
    assert len(pool.records) == 1
    record = pool.records[0]
    assert record.outcome is TaskOutcome.SUCCESS
    assert record.duration_s == pytest.approx(60.0, rel=0.15)


def test_worker_pool_retries_failed_task():
    env = Environment()
    pool = _pool(env, failure_model=_FailNTimes(2))
    task = Task(kind=TaskKind.REPROJECTION, request_id=1,
                nominal_duration_s=10.0)

    def submitter(env):
        yield from pool.submit(task)

    env.process(submitter(env))
    env.run(until=36_000.0)
    assert task.completed
    assert task.attempts == 3
    outcomes = [r.outcome for r in pool.records]
    assert outcomes.count(TaskOutcome.UNKNOWN_FAILURE) == 2
    assert outcomes.count(TaskOutcome.SUCCESS) == 1


def test_degraded_worker_task_killed_and_retried_elsewhere():
    env = Environment()
    monitor = TaskMonitor(env, multiplier=4.0, sweep_interval_s=10.0)
    monitor.start()
    pool = _pool(env, n_workers=2, monitor=monitor,
                 failure_model=_AlwaysSucceed())
    # Worker 0 degraded 6x; worker 1 healthy.
    pool.workers[0].slowdown = 6.0
    task = Task(kind=TaskKind.REPROJECTION, request_id=1,
                nominal_duration_s=300.0)

    def submitter(env):
        yield from pool.submit(task)

    env.process(submitter(env))
    env.run(until=100_000.0)
    assert task.completed
    outcomes = [r.outcome for r in pool.records]
    assert TaskOutcome.VM_EXECUTION_TIMEOUT in outcomes
    assert outcomes[-1] is TaskOutcome.SUCCESS
    killed = [r for r in pool.records
              if r.outcome is TaskOutcome.VM_EXECUTION_TIMEOUT]
    assert all(r.degraded_worker for r in killed)
    # The kill happened near 4x the task's nominal duration.
    assert killed[0].duration_s == pytest.approx(4 * 300.0, rel=0.15)


def test_worker_records_carry_day_index():
    env = Environment(initial_time=86_400.0 * 3 + 100)
    pool = _pool(env, failure_model=_AlwaysSucceed())
    task = Task(kind=TaskKind.AGGREGATION, request_id=1,
                nominal_duration_s=5.0)

    def submitter(env):
        yield from pool.submit(task)

    env.process(submitter(env))
    env.run(until=86_400.0 * 3 + 3600)
    assert pool.records[0].day == 3


def test_worker_abandons_after_max_attempts():
    from repro.modis import worker as worker_mod

    env = Environment()

    class _AlwaysFail:
        def sample(self, kind):
            return TaskOutcome.UNKNOWN_FAILURE

    pool = _pool(env, failure_model=_AlwaysFail())
    task = Task(kind=TaskKind.AGGREGATION, request_id=1,
                nominal_duration_s=1.0)

    def submitter(env):
        yield from pool.submit(task)

    env.process(submitter(env))
    env.run(until=500_000.0)
    assert task.abandoned
    assert task.attempts == worker_mod.MAX_ATTEMPTS
    assert pool.tasks_abandoned == 1
