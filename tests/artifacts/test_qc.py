"""QC gates on synthetic records: pass/fail semantics per rule."""

from repro.artifacts import (
    CellResult,
    QCThresholds,
    RunRecord,
    config_hash,
    payload_digest,
    run_qc,
)


def _cell(seed, level, **metrics):
    doc = {
        "ops_completed": metrics.pop("ops_completed", 10 * level),
        "errors": 0,
        "aggregate_ops_per_s": metrics.pop("ops_per_s", float(level)),
        "latency_mean_s": metrics.pop("mean", 0.05),
        "latency_p50_s": metrics.pop("p50", 0.04),
        "latency_p99_s": metrics.pop("p99", 0.09),
    }
    doc.update(metrics)
    return CellResult(
        seed=seed, level=level, digest=payload_digest(doc), metrics=doc
    )


def _sweep(cells, seeds, levels, spec=None):
    spec = spec if spec is not None else {"name": "synthetic"}
    return RunRecord(
        run_id="r-1",
        kind="scenario",
        name="synthetic",
        config_hash=config_hash(spec),
        spec=spec,
        seed_grid=list(seeds),
        level_grid=list(levels),
        cells=cells,
    )


def _gate(report, name):
    return next(c for c in report.checks if c.name == name)


def test_complete_low_variance_sweep_passes():
    cells = [
        _cell(s, n, ops_per_s=float(n) * (1.0 + 0.01 * s))
        for s in (1, 2, 3)
        for n in (2, 4)
    ]
    report = run_qc(_sweep(cells, (1, 2, 3), (2, 4)))
    assert report.passed, report.render()
    assert len(report.checks) == 7


def test_missing_cell_fails_completeness():
    cells = [_cell(s, n) for s in (1, 2) for n in (2, 4)]
    cells = [c for c in cells if not (c.seed == 2 and c.level == 4)]
    report = run_qc(_sweep(cells, (1, 2), (2, 4)))
    assert not report.passed
    gate = _gate(report, "completeness")
    assert not gate.passed
    assert "seed=2 level=4" in gate.detail


def test_zero_ops_cell_fails():
    cells = [_cell(1, 2), _cell(1, 4, ops_completed=0)]
    report = run_qc(_sweep(cells, (1,), (2, 4)))
    assert not _gate(report, "non-empty-cells").passed


def test_high_variance_fails_and_thresholds_tune():
    # Same level, wildly different throughput across seeds.
    cells = [
        _cell(1, 2, ops_per_s=1.0),
        _cell(2, 2, ops_per_s=9.0),
    ]
    record = _sweep(cells, (1, 2), (2,))
    assert not _gate(run_qc(record), "variance").passed
    loose = QCThresholds(max_cv=5.0, max_ci_frac=10.0)
    assert _gate(run_qc(record, loose), "variance").passed


def test_digest_clash_on_repeated_cell_fails():
    a = _cell(1, 2)
    b = _cell(1, 2, ops_completed=21)  # same (seed, level), new digest
    report = run_qc(_sweep([a, b], (1,), (2,)))
    gate = _gate(report, "digest-consistency")
    assert not gate.passed
    assert "seed=1 level=2" in gate.detail


def test_identical_repeats_pass_digest_gate():
    a = _cell(1, 2)
    b = _cell(1, 2)
    report = run_qc(_sweep([a, b], (1,), (2,)))
    gate = _gate(report, "digest-consistency")
    assert gate.passed
    assert "1 repeat" in gate.detail


def test_monotonicity_break_fails():
    cells = [_cell(1, 2, ops_completed=100), _cell(1, 4, ops_completed=50)]
    report = run_qc(_sweep(cells, (1,), (2, 4)))
    gate = _gate(report, "monotonicity")
    assert not gate.passed
    assert "2->4" in gate.detail


def test_percentile_disorder_fails():
    cells = [_cell(1, 2, p50=0.2, p99=0.1)]
    report = run_qc(_sweep(cells, (1,), (2,)))
    assert not _gate(report, "percentile-order").passed


def test_config_hash_tamper_fails():
    cells = [_cell(1, 2)]
    record = _sweep(cells, (1,), (2,))
    record.spec = {"name": "synthetic", "tampered": True}
    report = run_qc(record)
    assert not _gate(report, "config-hash").passed


def test_non_sweep_record_passes_trivially():
    record = RunRecord(
        run_id="b-1",
        kind="bench",
        name="kernel",
        config_hash=config_hash({"scale": 0.1}),
        spec={"scale": 0.1},
        metrics={"kernel": {"events_per_s": 1e6}},
    )
    report = run_qc(record)
    assert report.passed
    names = [c.name for c in report.checks]
    # Cell-based gates are skipped entirely for non-sweep records.
    assert "variance" not in names
    assert "monotonicity" not in names
    assert "no declared grid" in _gate(report, "completeness").detail


def test_report_round_trip_and_render():
    cells = [_cell(1, 2)]
    report = run_qc(_sweep(cells, (1,), (2,)))
    doc = report.to_dict()
    assert doc["passed"] is True
    assert {c["name"] for c in doc["checks"]} == {
        c.name for c in report.checks
    }
    rendered = report.render()
    assert "QC PASS" in rendered
    assert "config-hash" in rendered
