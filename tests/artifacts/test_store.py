"""Catalog store: round-trips, content addressing, durability, pins."""

import json

import pytest

from repro.artifacts import (
    CATALOG_CONTAINER,
    CatalogError,
    CatalogStore,
    CellResult,
    RunRecord,
    config_hash,
    payload_digest,
)


def _record(name="demo", kind="scenario", seeds=(3,), levels=(2,)):
    spec = {"name": name, "levels": list(levels)}
    cells = [
        CellResult(
            seed=s,
            level=n,
            digest=payload_digest({"ops_completed": 10 * n}),
            metrics={"ops_completed": 10 * n},
        )
        for s in seeds
        for n in levels
    ]
    return RunRecord(
        run_id="",
        kind=kind,
        name=name,
        config_hash=config_hash(spec),
        spec=spec,
        seed_grid=list(seeds),
        level_grid=list(levels),
        cells=cells,
        metrics={"cells": len(cells)},
    )


def test_put_get_round_trip(tmp_path):
    store = CatalogStore(tmp_path / "cat")
    record = _record()
    run_id = store.put_record(record)
    assert run_id.startswith("scenario-demo-")
    got = store.get_record(run_id)
    assert got.to_dict() == record.to_dict()
    assert got.cell(3, 2).metrics == {"ops_completed": 20}


def test_records_written_through_simulated_blob_service(tmp_path):
    store = CatalogStore(tmp_path / "cat")
    store.put_record(_record())
    # The object + manifest blobs exist in the simulated container and
    # the store's private tracer saw real pipeline requests.
    assert store.blobs.blob_count(CATALOG_CONTAINER) == 2
    assert store.platform.tracer.total >= 2
    stats = store.stats()
    assert stats["runs"] == 1.0
    assert stats["catalog_requests"] >= 2.0


def test_run_ids_are_sequential_and_unique(tmp_path):
    store = CatalogStore(tmp_path / "cat")
    first = store.put_record(_record())
    second = store.put_record(_record())
    assert first != second
    assert store.list_runs()[0]["run_id"] == first
    assert store.latest() == second
    with pytest.raises(CatalogError):
        store.put_record(
            RunRecord(
                run_id=first, kind="scenario", name="demo",
                config_hash="x",
            )
        )


def test_reopen_preserves_catalog(tmp_path):
    root = tmp_path / "cat"
    record = _record()
    run_id = CatalogStore(root).put_record(record)
    store = CatalogStore(root)
    got = store.get_record(run_id)
    assert got.to_dict() == record.to_dict()
    # Mounted objects are administratively seeded, then served through
    # the simulated download path.
    assert store.blobs.exists(
        CATALOG_CONTAINER, f"objects/{store.manifest['runs'][run_id]['object']}"
    )
    assert store.platform.tracer.total >= 1


def test_content_address_check_catches_tampering(tmp_path):
    root = tmp_path / "cat"
    store = CatalogStore(root)
    run_id = store.put_record(_record())
    digest = store.manifest["runs"][run_id]["object"]
    path = root / "objects" / f"{digest}.json"
    doc = json.loads(path.read_text())
    doc["metrics"]["cells"] = 999
    path.write_text(json.dumps(doc))
    with pytest.raises(CatalogError, match="content-address"):
        CatalogStore(root).get_record(run_id)


def test_missing_object_fails_loudly(tmp_path):
    root = tmp_path / "cat"
    store = CatalogStore(root)
    run_id = store.put_record(_record())
    digest = store.manifest["runs"][run_id]["object"]
    (root / "objects" / f"{digest}.json").unlink()
    with pytest.raises(CatalogError, match="missing"):
        CatalogStore(root)


def test_freeze_unfreeze_and_resolve(tmp_path):
    store = CatalogStore(tmp_path / "cat")
    first = store.put_record(_record())
    second = store.put_record(_record())
    store.freeze(first, "baseline")
    assert store.frozen_run_id("baseline") == first
    assert store.frozen_labels(first) == ["baseline"]
    # resolve: explicit id > frozen label > latest
    assert store.resolve(run_id=first) == first
    assert store.resolve(frozen="baseline") == first
    assert store.resolve() == second
    # pins survive reopen
    assert CatalogStore(store.root).frozen_run_id("baseline") == first
    store.unfreeze("baseline")
    assert store.frozen_run_id("baseline") is None
    with pytest.raises(CatalogError):
        store.resolve(frozen="baseline")
    with pytest.raises(CatalogError):
        store.freeze("no-such-run")


def test_resolve_empty_catalog_raises(tmp_path):
    store = CatalogStore(tmp_path / "cat")
    with pytest.raises(CatalogError, match="empty"):
        store.resolve()


def test_list_runs_filters_by_kind(tmp_path):
    store = CatalogStore(tmp_path / "cat")
    store.put_record(_record(kind="scenario"))
    store.put_record(_record(name="bench", kind="bench"))
    assert [r["kind"] for r in store.list_runs()] == ["scenario", "bench"]
    assert [r["kind"] for r in store.list_runs("bench")] == ["bench"]
    assert store.latest("scenario").startswith("scenario-")


def test_identical_payloads_share_one_object(tmp_path):
    store = CatalogStore(tmp_path / "cat")
    record_a = _record()
    record_b = _record()
    id_a = store.put_record(record_a)
    id_b = store.put_record(record_b)
    # run_id is assigned before hashing, so payloads differ; but a
    # bit-identical payload (same run_id forced) would dedupe.  Check
    # the cheaper invariant instead: object count equals distinct
    # payload digests + 1 manifest blob.
    objects = {
        store.manifest["runs"][rid]["object"] for rid in (id_a, id_b)
    }
    assert store.blobs.blob_count(CATALOG_CONTAINER) == len(objects) + 1
