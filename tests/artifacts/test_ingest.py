"""Driver → catalog ingestion: exact + batched grids, determinism, and
the observation-only contract (cataloging never changes a result)."""

import pytest

from repro.artifacts import (
    CatalogStore,
    ingest_bench,
    ingest_campaign,
    ingest_scenario_run,
    payload_digest,
    run_qc,
    run_scenario_sweep,
    scenario_record,
)
from repro.experiments.golden import digest_scenario
from repro.scenarios import get_scenario, run_scenario, sweep_scenario


@pytest.fixture(scope="module")
def spec():
    return get_scenario("fig3-queue-add").scaled(0.2)


def test_exact_grid_record(spec):
    record = run_scenario_sweep(
        spec, levels=[2, 4], seeds=[3, 4], mode="exact"
    )
    assert record.kind == "scenario"
    assert record.name == spec.name
    assert record.seed_grid == [3, 4]
    assert record.level_grid == [2, 4]
    assert len(record.cells) == 4
    for cell in record.cells:
        assert cell.metrics["ops_completed"] > 0
        assert cell.digest == payload_digest(cell.metrics)
    # Tracer snapshots ride along per cell.
    assert set(record.snapshots) == {
        f"tracer:s{s}-n{n}" for s in (3, 4) for n in (2, 4)
    }
    # The record's own QC completeness gate sees the declared grid.
    report = run_qc(record)
    names = {c.name: c.passed for c in report.checks}
    assert names["completeness"]
    assert names["digest-consistency"]


def test_batched_grid_record():
    spec = get_scenario("block-storage").scaled(0.05)
    record = run_scenario_sweep(
        spec, levels=[2000], seeds=[3], mode="batched"
    )
    assert record.level_grid == [2000]
    assert len(record.cells) == 1
    cell = record.cells[0]
    assert cell.metrics["mode"] == "batched"
    assert cell.metrics["ops_completed"] > 0
    assert "tracer:s3-n2000" in record.snapshots


def test_grid_record_is_deterministic(spec):
    a = run_scenario_sweep(spec, levels=[2], seeds=[3], mode="exact")
    b = run_scenario_sweep(spec, levels=[2], seeds=[3], mode="exact")
    assert [c.digest for c in a.cells] == [c.digest for c in b.cells]
    assert a.config_hash == b.config_hash
    assert a.snapshots == b.snapshots


def test_scenario_record_matches_driver_results(spec):
    runs = sweep_scenario(spec, levels=[2, 4], seed=3, mode="exact")
    record = scenario_record(spec, {3: runs}, mode="exact")
    for cell in record.cells:
        assert cell.metrics == runs[cell.level].summary()


def test_ingest_single_run_and_read_back(tmp_path, spec):
    result = run_scenario(spec, n_clients=2, seed=3, mode="exact")
    store = CatalogStore(tmp_path / "cat")
    run_id = ingest_scenario_run(store, spec, result, mode="exact")
    got = store.get_record(run_id)
    assert got.cells[0].metrics == result.summary()
    assert got.seed_grid == [result.seed]
    assert got.level_grid == [result.n_clients]


def test_cataloging_is_observation_only(tmp_path, spec):
    """The tentpole invariant: a catalogued run is bit-identical to an
    uncatalogued one (catalog I/O runs on the store's own platform)."""
    plain = run_scenario(spec, n_clients=2, seed=3, mode="exact")
    store = CatalogStore(tmp_path / "cat")
    catalogued = run_scenario(spec, n_clients=2, seed=3, mode="exact")
    ingest_scenario_run(store, spec, catalogued, mode="exact")
    again = run_scenario(spec, n_clients=2, seed=3, mode="exact")
    assert plain.summary() == catalogued.summary() == again.summary()


def test_golden_scenario_digest_unchanged_by_cataloging(tmp_path):
    """Golden digests stay bit-identical with cataloging interleaved."""
    before = digest_scenario("streaming")
    store = CatalogStore(tmp_path / "cat")
    spec = get_scenario("streaming").scaled(0.05)
    result = run_scenario(spec, seed=3, mode="batched")
    ingest_scenario_run(store, spec, result, mode="batched")
    after = digest_scenario("streaming")
    assert before == after


def test_ingest_campaign(tmp_path):
    from repro.resilience.campaign import CAMPAIGN_SCENARIOS, run_campaign

    spec = CAMPAIGN_SCENARIOS["day"](seed=3, scale=0.02)
    report = run_campaign(spec, modes=["automatic"], fast=True, jobs=1)
    store = CatalogStore(tmp_path / "cat")
    run_id = ingest_campaign(store, spec, report)
    got = store.get_record(run_id)
    assert got.kind == "campaign"
    assert "automatic" in got.metrics["modes"]
    assert "slo:automatic" in got.snapshots
    assert run_qc(got).passed


def test_ingest_bench_snapshot(tmp_path):
    snapshot = {
        "scale": 0.1,
        "seed": 3,
        "jobs": 1,
        "kernel": {"timeout_churn_events_per_s": 1.5e6},
    }
    store = CatalogStore(tmp_path / "cat")
    run_id = ingest_bench(store, snapshot)
    got = store.get_record(run_id)
    assert got.kind == "bench"
    assert got.metrics == snapshot
    assert got.spec == {"scale": 0.1, "seed": 3, "jobs": 1}
    assert run_qc(got).passed
