"""Dashboard rendering + the qc/dash/catalog CLI surface."""

import json

import pytest

from repro.artifacts import (
    CatalogStore,
    CellResult,
    RunRecord,
    config_hash,
    pareto_frontier,
    payload_digest,
    render_dash,
)
from repro.cli import main


def _cell(seed, level, ops_per_s, p99, availability=1.0):
    ops = 100 * level
    errors = int(round(ops * (1.0 - availability)))
    doc = {
        "ops_completed": ops,
        "errors": errors,
        "aggregate_ops_per_s": ops_per_s,
        "latency_mean_s": p99 / 2,
        "latency_p50_s": p99 / 3,
        "latency_p99_s": p99,
    }
    return CellResult(
        seed=seed, level=level, digest=payload_digest(doc), metrics=doc
    )


def _sweep_record(cells, seeds, levels):
    spec = {"name": "dash-demo"}
    return RunRecord(
        run_id="scenario-dash-demo-0001",
        kind="scenario",
        name="dash-demo",
        config_hash=config_hash(spec),
        spec=spec,
        seed_grid=list(seeds),
        level_grid=list(levels),
        cells=cells,
    )


def test_pareto_frontier_mask():
    # (throughput, latency): higher-x lower-y dominates.
    points = [(1.0, 5.0), (2.0, 4.0), (3.0, 6.0), (3.0, 6.0)]
    mask = pareto_frontier(points)
    assert mask == [False, True, True, True]
    assert pareto_frontier([]) == []
    assert pareto_frontier([(1.0, 1.0)]) == [True]


def test_render_sweep_sections():
    cells = [
        _cell(s, n, ops_per_s=float(n), p99=0.1 - 0.01 * n,
              availability=0.99 if n == 4 else 1.0)
        for s in (1, 2)
        for n in (2, 4)
    ]
    out = render_dash(
        _sweep_record(cells, (1, 2), (2, 4)),
        availability_target=0.999,
        frozen_labels=["baseline"],
    )
    assert "KPI by population level" in out
    assert "error-budget burn" in out
    assert "efficient frontier" in out
    assert "[frozen: baseline]" in out
    assert "BURNING" in out  # level-4 cells burn a 99.9% budget at 99%


def test_render_campaign_record():
    record = RunRecord(
        run_id="campaign-day-0001",
        kind="campaign",
        name="day",
        config_hash=config_hash({"name": "day"}),
        spec={"name": "day"},
        metrics={
            "modes": {
                "automatic": {
                    "availability": 0.9995,
                    "bad_minutes": 3,
                    "zero_minutes": 1,
                    "p99_ms": 120.0,
                    "lost_writes": 0,
                    "worst_burn_rate": 0.8,
                    "slo_pass": True,
                }
            }
        },
    )
    out = render_dash(record)
    assert "failover" in out
    assert "automatic" in out
    assert "PASS" in out


def test_render_flat_record():
    record = RunRecord(
        run_id="bench-kernel-0001",
        kind="bench",
        name="kernel",
        config_hash=config_hash({"scale": 0.1}),
        spec={"scale": 0.1},
        metrics={"kernel": {"events_per_s": 2e6}, "scale": 0.1},
    )
    out = render_dash(record)
    assert "kernel.events_per_s" in out


@pytest.fixture()
def seeded_catalog(tmp_path):
    root = tmp_path / "cat"
    store = CatalogStore(root)
    cells = [
        _cell(s, n, ops_per_s=float(n) * (1 + 0.01 * s), p99=0.08)
        for s in (1, 2)
        for n in (2, 4)
    ]
    record = _sweep_record(cells, (1, 2), (2, 4))
    record.run_id = ""
    run_id = store.put_record(record)
    return root, run_id


def test_cli_qc_pass_and_freeze(seeded_catalog, capsys):
    root, run_id = seeded_catalog
    rc = main([
        "qc", run_id, "--catalog", str(root), "--freeze", "baseline",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "QC PASS" in out
    assert CatalogStore(root).frozen_run_id("baseline") == run_id


def test_cli_qc_fails_incomplete_sweep_and_refuses_freeze(
    tmp_path, capsys
):
    root = tmp_path / "cat"
    store = CatalogStore(root)
    cells = [_cell(1, 2, ops_per_s=2.0, p99=0.08)]  # level 4 missing
    record = _sweep_record(cells, (1,), (2, 4))
    record.run_id = ""
    run_id = store.put_record(record)
    rc = main(["qc", run_id, "--catalog", str(root), "--freeze"])
    captured = capsys.readouterr()
    assert rc == 1
    assert "QC FAIL" in captured.out
    assert "NOT freezing" in captured.err
    assert CatalogStore(root).frozen_run_id("frozen") is None


def test_cli_dash_latest_and_frozen(seeded_catalog, capsys):
    root, run_id = seeded_catalog
    assert main(["qc", run_id, "--catalog", str(root), "--freeze"]) == 0
    capsys.readouterr()
    rc = main(["dash", "--catalog", str(root), "--frozen", "frozen"])
    out = capsys.readouterr().out
    assert rc == 0
    assert run_id in out
    assert "KPI by population level" in out
    assert "[frozen: frozen]" in out


def test_cli_dash_json_export(seeded_catalog, tmp_path, capsys):
    root, run_id = seeded_catalog
    out_path = tmp_path / "record.json"
    rc = main([
        "dash", run_id, "--catalog", str(root), "--json", str(out_path),
    ])
    capsys.readouterr()
    assert rc == 0
    doc = json.loads(out_path.read_text())
    assert doc["run_id"] == run_id
    assert len(doc["cells"]) == 4


def test_cli_catalog_list_and_show(seeded_catalog, capsys):
    root, run_id = seeded_catalog
    assert main(["catalog", "list", "--catalog", str(root)]) == 0
    out = capsys.readouterr().out
    assert run_id in out
    assert "1 runs" in out
    assert main(["catalog", "show", run_id, "--catalog", str(root)]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["run_id"] == run_id


def test_cli_qc_missing_run_exits_2(tmp_path, capsys):
    root = tmp_path / "cat"
    CatalogStore(root)  # empty catalog
    rc = main(["qc", "nope", "--catalog", str(root)])
    captured = capsys.readouterr()
    assert rc == 2
    assert "catalog error" in captured.err
