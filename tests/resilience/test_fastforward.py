"""Equivalence tests: piecewise-stationary fast-forward vs event-level.

The contract the fast driver ships under: on the same spec + seed, its
availability verdicts, per-minute bad/dark counts and SLO burn match
the event-level replay within a pinned tolerance.  Outcomes are
deterministic (same realized fault/failover timeline, same
classification), so the only slack allowed is for guard-band ops whose
retry ladders straddle a repair — their success hinges on backoff draws
from a policy stream whose state differs between the two drivers.  The
pinned tolerance is ±2 operations end-to-end; every structural count
(verdicts, failover counters, lost writes, minutes) must agree
exactly or within that op slack.
"""

import numpy as np
import pytest

from repro.resilience.campaign import (
    CAMPAIGN_MODES,
    _run_mode,
    day_campaign_spec,
    run_campaign,
)
from repro.resilience.fastforward import (
    classify_ops,
    default_guard_band_s,
    fast_run_mode,
    merge_guard_bands,
    realize_timeline,
)

#: Guard ops issued inside a backoff-ladder span of a repair can flip
#: outcome on RNG-stream history; everything else is deterministic.
OP_TOLERANCE = 2


@pytest.fixture(scope="module")
def spec():
    return day_campaign_spec(seed=3, scale=0.25)


@pytest.fixture(scope="module")
def pairs(spec):
    """(event, fast) ModeResult per failover mode — the expensive part,
    shared by every assertion below."""
    return {
        mode: (_run_mode(spec, mode), fast_run_mode(spec, mode))
        for mode in CAMPAIGN_MODES
    }


# -- the headline equivalence ------------------------------------------------

@pytest.mark.parametrize("mode", CAMPAIGN_MODES)
def test_availability_matches_within_op_tolerance(pairs, mode):
    ev, fa = pairs[mode]
    assert fa.result.ops == ev.result.ops
    assert abs(fa.result.ok - ev.result.ok) <= OP_TOLERANCE
    assert abs(fa.result.failed - ev.result.failed) <= OP_TOLERANCE
    assert fa.result.availability == pytest.approx(
        ev.result.availability, abs=OP_TOLERANCE / ev.result.ops
    )


@pytest.mark.parametrize("mode", CAMPAIGN_MODES)
def test_minute_counts_match_within_tolerance(pairs, mode):
    ev, fa = pairs[mode]
    assert fa.minutes == ev.minutes
    assert abs(fa.bad_minutes - ev.bad_minutes) <= 1
    assert abs(fa.zero_minutes - ev.zero_minutes) <= 1
    assert fa.mean_minute_availability == pytest.approx(
        ev.mean_minute_availability, abs=5e-3
    )


@pytest.mark.parametrize("mode", CAMPAIGN_MODES)
def test_slo_verdict_and_availability_burn_match(pairs, mode):
    ev, fa = pairs[mode]
    assert fa.result.slo_pass == ev.result.slo_pass
    ev_slo, fa_slo = ev.result.slo_dict(), fa.result.slo_dict()
    assert fa_slo["availability"]["passed"] == (
        ev_slo["availability"]["passed"]
    )
    # Availability burn is arithmetic over the op counts: inside the
    # same ±2-op slack.
    assert fa_slo["availability"]["burn_rate"] == pytest.approx(
        ev_slo["availability"]["burn_rate"],
        abs=100.0 * OP_TOLERANCE / ev.result.ops,
    )
    # The p99 objective is statistical (analytic latency draws), but
    # the pass/fail verdict must agree on this spec.
    for key in ev_slo:
        if key.startswith("p99"):
            assert fa_slo[key]["passed"] == ev_slo[key]["passed"]


def test_failover_machinery_counters_match(pairs):
    for mode, (ev, fa) in pairs.items():
        assert fa.account_failovers == ev.account_failovers, mode
        assert fa.account_failbacks == ev.account_failbacks, mode
        assert fa.lost_writes == ev.lost_writes, mode
        assert abs(fa.client_failovers - ev.client_failovers) <= (
            OP_TOLERANCE
        ), mode


def test_fast_mode_is_deterministic(spec):
    a = fast_run_mode(spec, "automatic").to_dict()
    b = fast_run_mode(spec, "automatic").to_dict()
    assert a == b


def test_run_campaign_fast_grid_parallel_bit_identical(spec):
    serial = run_campaign(spec, fast=True, jobs=1).to_dict()
    pooled = run_campaign(spec, fast=True, jobs=2).to_dict()
    assert serial == pooled


# -- timeline / guard-band structure -----------------------------------------

def test_realized_timeline_covers_the_fault_schedule(spec):
    tl = realize_timeline(spec, "automatic")
    # Every scheduled fault fires and repairs inside the horizon.
    assert len(tl.transitions) >= 2 * len(spec.faults)
    for fault in spec.faults:
        assert fault.start_s in tl.transitions
    # Automatic mode's state machine left primary and came back.
    states = [s for _t, s in tl.state_log]
    assert states[0] == "primary-active"
    assert "secondary-active" in states
    assert states[-1] == "primary-active"
    # Timeline realization is ops-free, so it is identical across runs.
    tl2 = realize_timeline(spec, "automatic")
    assert tl2.transitions == tl.transitions
    assert tl2.state_log == tl.state_log


def test_guard_bands_merge_overlaps():
    assert merge_guard_bands([100.0, 150.0, 1000.0], 50.0) == [
        (50.0, 200.0), (950.0, 1050.0),
    ]
    assert merge_guard_bands([10.0], 50.0) == [(0.0, 60.0)]
    assert merge_guard_bands([], 50.0) == []


def test_default_guard_band_covers_lag_and_timeout(spec):
    g = default_guard_band_s(spec)
    assert g >= spec.replication_lag_s
    assert g >= 60.0 + spec.client_timeout_s


def test_classification_mode_none_is_primary_reachability():
    is_read = np.array([True, False, True, False])
    p_down = np.array([False, False, True, True])
    state = np.zeros(4, dtype=np.int8)
    cat = classify_ops("none", is_read, p_down, p_down, state)
    assert cat.tolist() == [0, 1, 6, 6]


def test_classification_geo_reads_fail_over_and_writes_guard():
    is_read = np.array([True, True, True, False, False, False])
    p_down = np.array([True, True, False, True, False, False])
    s_down = np.array([False, True, False, False, False, False])
    #                 reads: fo-ok, both-down, ok; writes: down, promo, ok
    state = np.array([0, 0, 0, 0, 1, 2], dtype=np.int8)
    cat = classify_ops("manual", is_read, p_down, s_down, state)
    # During secondary-active (state 2) writes land on the secondary.
    assert cat.tolist() == [2, 3, 0, 4, 5, 1]


def test_narrower_guard_band_still_matches_availability(spec):
    """The guard band protects the lag ledger and ladder-straddling
    ops; the availability *classification* is band-independent."""
    ev = _run_mode(spec, "automatic")
    fa = fast_run_mode(spec, "automatic", guard_band_s=200.0)
    assert fa.result.ops == ev.result.ops
    assert abs(fa.result.ok - ev.result.ok) <= OP_TOLERANCE
    assert fa.result.slo_pass == ev.result.slo_pass
