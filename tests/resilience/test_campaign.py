"""Tests for long-horizon availability campaigns over correlated faults."""

import pytest

from repro.resilience.campaign import (
    CAMPAIGN_MODES,
    CAMPAIGN_SCENARIOS,
    CampaignFault,
    CampaignSpec,
    _run_mode,
    day_campaign_spec,
    month_campaign_spec,
    run_campaign,
)


@pytest.fixture(scope="module")
def day_report():
    """One compressed day campaign, all three modes, shared by the
    assertion tests below (the run is the expensive part)."""
    return run_campaign(day_campaign_spec(seed=3, scale=0.25))


# -- spec plumbing -----------------------------------------------------------

def test_spec_derives_op_count_and_fault_windows():
    spec = CampaignSpec(
        name="x",
        faults=(CampaignFault("rack-a1", 100.0, 50.0),),
        duration_s=3600.0,
        op_interval_s=60.0,
    )
    assert spec.ops_per_client == 60
    assert not spec.in_window(99.0)
    assert spec.in_window(100.0)
    assert spec.in_window(149.0)
    assert not spec.in_window(150.0)


def test_standard_scenarios_cover_the_planned_outages():
    month = month_campaign_spec()
    assert month.duration_s == 30 * 86400.0
    assert [f.domain for f in month.faults] == [
        "rack-a1", "zone-a", "wan", "region-a",
    ]
    day = CAMPAIGN_SCENARIOS["day"]()
    assert day.duration_s == 86400.0
    assert {f.kind for f in day.faults} == {"crash_restart", "blackout"}
    # Scaling compresses the schedule with the horizon.
    half = month_campaign_spec(scale=0.5)
    assert half.duration_s == 15 * 86400.0
    assert half.faults[0].start_s == month.faults[0].start_s / 2


def test_unknown_mode_is_rejected():
    spec = day_campaign_spec(scale=0.01)
    with pytest.raises(ValueError):
        _run_mode(spec, "psychic")


# -- the mode gradient (the point of the whole exercise) ---------------------

def test_automatic_failover_beats_no_replication(day_report):
    none = day_report.result("none")
    auto = day_report.result("automatic")
    # Same seed, same correlated-fault schedule, same op mix: the only
    # difference is the failover machinery -- which must strictly win.
    assert auto.result.availability > none.result.availability
    assert auto.bad_minutes < none.bad_minutes
    assert auto.result.worst_burn_rate < none.result.worst_burn_rate
    # The single-region account has nothing to fail over to.
    assert none.account_failovers == 0
    assert none.client_failovers == 0
    assert auto.account_failovers >= 1
    assert auto.account_failbacks >= 1


def test_manual_mode_recovers_reads_but_not_writes(day_report):
    none = day_report.result("none")
    manual = day_report.result("manual")
    # Nobody promotes the secondary, but the client's replica failover
    # still recovers idempotent reads -- availability sits strictly
    # between no-replication and automatic failover.
    assert manual.account_failovers == 0
    assert manual.client_failovers >= 1
    assert manual.result.availability > none.result.availability
    auto = day_report.result("automatic")
    assert manual.result.availability < auto.result.availability


def test_day_campaign_verdicts_and_report_shape(day_report):
    assert [r.mode for r in day_report.results] == list(CAMPAIGN_MODES)
    # The compressed day is harsh enough that bare single-region hosting
    # misses a 99% SLO while automatic failover clears it.
    assert not day_report.result("none").result.slo_pass
    assert day_report.result("automatic").result.slo_pass
    assert day_report.passed
    with pytest.raises(KeyError):
        day_report.result("psychic")


def test_report_to_dict_is_schema_shaped(day_report):
    doc = day_report.to_dict()
    assert doc["scenario"] == "day"
    assert doc["seed"] == 3
    assert set(doc["slo"]) == {"availability", "p99_ms", "amplification"}
    assert [f["domain"] for f in doc["faults"]] == [
        "rack-a1", "zone-a", "wan",
    ]
    assert set(doc["modes"]) == set(CAMPAIGN_MODES)
    for mode in doc["modes"].values():
        assert mode["ops"] == mode["ok"] + mode["failed"]
        assert mode["ops"] > 0
        assert mode["availability"] == pytest.approx(
            mode["ok"] / mode["ops"]
        )
        assert 0 <= mode["zero_minutes"] <= mode["bad_minutes"]
        assert mode["bad_minutes"] <= mode["minutes"]


def test_render_is_a_verdict_table(day_report):
    text = day_report.render()
    for column in ("failover", "avail", "dark min", "acct f/o",
                   "lost wr", "burn", "verdict"):
        assert column in text
    for mode in CAMPAIGN_MODES:
        assert mode in text
    assert "PASS" in text and "FAIL" in text


# -- determinism -------------------------------------------------------------

def test_same_seed_replays_identical_numbers():
    spec = day_campaign_spec(seed=7, scale=0.1)
    first = run_campaign(spec, modes=["automatic"])
    second = run_campaign(spec, modes=["automatic"])
    assert first.to_dict() == second.to_dict()


def test_different_seed_changes_the_world():
    a = run_campaign(day_campaign_spec(seed=7, scale=0.1),
                     modes=["automatic"])
    b = run_campaign(day_campaign_spec(seed=8, scale=0.1),
                     modes=["automatic"])
    assert a.to_dict() != b.to_dict()


# -- process-pool grid fan-out -----------------------------------------------

def test_mode_grid_fans_out_bit_identical(day_report):
    """One cell = one (scenario, mode) world: pooled execution must be
    byte-for-byte the serial report (including the pickled registries
    the SLO engine reads back in the parent)."""
    pooled = run_campaign(
        day_campaign_spec(seed=3, scale=0.25), jobs=2
    )
    assert pooled.to_dict() == day_report.to_dict()


def test_single_mode_grid_skips_the_pool():
    spec = day_campaign_spec(seed=7, scale=0.1)
    serial = run_campaign(spec, modes=["automatic"], jobs=1)
    pooled = run_campaign(spec, modes=["automatic"], jobs=4)
    assert pooled.to_dict() == serial.to_dict()
