"""Unit + integration tests for the circuit breaker state machine."""

import pytest

from repro.client.base import with_retries
from repro.resilience.backoff import NO_RETRY
from repro.resilience import CircuitBreaker, CircuitOpenError
from repro.simcore import Environment
from repro.storage.errors import EntityNotFoundError, ServerBusyError


def _breaker(env, **kwargs):
    defaults = dict(
        window=10, error_threshold=0.5, min_volume=4, open_for_s=30.0,
        probe_quota=1, probe_successes=2,
    )
    defaults.update(kwargs)
    return CircuitBreaker(env, **defaults)


def _run(env, gen):
    box = {}

    def proc(env):
        try:
            box["result"] = yield from gen
        except Exception as exc:  # noqa: BLE001 - test harness
            box["error"] = exc

    env.process(proc(env))
    env.run()
    return box.get("result"), box.get("error")


def test_stays_closed_below_min_volume():
    env = Environment()
    breaker = _breaker(env, min_volume=4)
    for _ in range(3):
        breaker.on_failure(ServerBusyError("busy"))
    assert breaker.state == "closed"
    assert breaker.error_rate == 1.0


def test_trips_open_at_error_threshold():
    env = Environment()
    breaker = _breaker(env)
    for _ in range(2):
        breaker.on_success()
    for _ in range(2):
        breaker.on_failure(ServerBusyError("busy"))
    assert breaker.state == "open"
    assert breaker.opens == 1
    with pytest.raises(CircuitOpenError):
        breaker.guard("insert")
    assert breaker.fast_failures == 1


def test_semantic_errors_count_as_answers():
    """Not-found proves the service is answering: never trips the breaker."""
    env = Environment()
    breaker = _breaker(env)
    for _ in range(20):
        breaker.on_failure(EntityNotFoundError("missing"))
    assert breaker.state == "closed"
    assert breaker.error_rate == 0.0


def test_half_open_probe_cycle_closes_on_success():
    env = Environment()
    breaker = _breaker(env, open_for_s=10.0, probe_successes=2)
    for _ in range(4):
        breaker.on_failure(ServerBusyError("busy"))
    assert breaker.state == "open"

    env.run(until=10.0)  # past open_for_s
    breaker.guard()  # transitions to half-open and admits the probe
    assert breaker.state == "half_open"
    breaker.on_success()
    breaker.guard()
    breaker.on_success()
    assert breaker.state == "closed"
    assert breaker.state_sequence() == [
        "closed", "open", "half_open", "closed",
    ]


def test_half_open_probe_failure_reopens():
    env = Environment()
    breaker = _breaker(env, open_for_s=10.0)
    for _ in range(4):
        breaker.on_failure(ServerBusyError("busy"))
    env.run(until=10.0)
    breaker.guard()
    assert breaker.state == "half_open"
    breaker.on_failure(ServerBusyError("still busy"))
    assert breaker.state == "open"
    assert breaker.opens == 2
    # The re-open restarts the clock: still open a moment later.
    env.run(until=15.0)
    with pytest.raises(CircuitOpenError):
        breaker.guard()


def test_half_open_probe_quota_limits_concurrency():
    env = Environment()
    breaker = _breaker(env, open_for_s=1.0, probe_quota=1)
    for _ in range(4):
        breaker.on_failure(ServerBusyError("busy"))
    env.run(until=1.0)
    breaker.guard()  # the one admitted probe
    with pytest.raises(CircuitOpenError):
        breaker.guard()  # quota exhausted while the probe is in flight


def test_transition_callback_fires():
    env = Environment()
    seen = []
    breaker = _breaker(
        env, on_transition=lambda t, old, new: seen.append((t, old, new))
    )
    for _ in range(4):
        breaker.on_failure(ServerBusyError("busy"))
    assert seen == [(0.0, "closed", "open")]


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        CircuitBreaker(env, error_threshold=0.0)
    with pytest.raises(ValueError):
        CircuitBreaker(env, window=0)


def test_with_retries_fails_fast_when_open():
    """An open breaker rejects the call before any server work."""
    env = Environment()
    breaker = _breaker(env)
    for _ in range(4):
        breaker.on_failure(ServerBusyError("busy"))
    attempts = {"n": 0}

    def op():
        attempts["n"] += 1
        yield env.timeout(0.1)
        return "ok"

    _, err = _run(
        env, with_retries(env, op, NO_RETRY, None, breaker=breaker)
    )
    assert isinstance(err, CircuitOpenError)
    assert attempts["n"] == 0  # never sent
    assert env.now == 0.0  # and no time spent


def test_with_retries_feeds_the_breaker_window():
    env = Environment()
    breaker = _breaker(env, min_volume=2, error_threshold=1.0)

    def busy():
        yield env.timeout(0.1)
        raise ServerBusyError("busy")

    for _ in range(2):
        _, err = _run(env, with_retries(env, busy, NO_RETRY, None,
                                        breaker=breaker))
        assert isinstance(err, ServerBusyError)
    assert breaker.state == "open"
