"""Unit + integration tests for the retry budget (token bucket)."""

import pytest

from repro.client.base import with_retries
from repro.resilience.backoff import RetryPolicy
from repro.resilience import RetryBudget
from repro.simcore import Environment
from repro.storage.errors import ServerBusyError


def _run(env, gen):
    box = {}

    def proc(env):
        try:
            box["result"] = yield from gen
        except Exception as exc:  # noqa: BLE001 - test harness
            box["error"] = exc

    env.process(proc(env))
    env.run()
    return box.get("result"), box.get("error")


def test_initial_tokens_and_deposits():
    budget = RetryBudget(ratio=0.5, initial_tokens=2.0, max_tokens=3.0)
    assert budget.tokens == 2.0
    budget.record_call()
    assert budget.tokens == 2.5
    for _ in range(10):
        budget.record_call()
    assert budget.tokens == 3.0  # capped at max_tokens
    assert budget.calls == 11


def test_spend_and_shed_accounting():
    budget = RetryBudget(ratio=0.0, initial_tokens=2.0)
    assert budget.try_spend()
    assert budget.try_spend()
    assert not budget.try_spend()  # bucket empty: shed
    assert budget.granted == 2
    assert budget.shed == 1
    assert budget.shed_fraction == pytest.approx(1 / 3)


def test_fractional_balance_cannot_fund_a_retry():
    budget = RetryBudget(ratio=0.25, initial_tokens=0.0)
    for _ in range(3):
        budget.record_call()
    assert not budget.try_spend()  # 0.75 tokens < 1.0
    budget.record_call()
    assert budget.try_spend()


def test_validation():
    with pytest.raises(ValueError):
        RetryBudget(ratio=-0.1)
    with pytest.raises(ValueError):
        RetryBudget(max_tokens=0.0)


def test_with_retries_sheds_when_budget_empty():
    """An exhausted budget surfaces the original error immediately."""
    env = Environment()
    attempts = {"n": 0}

    def always_busy():
        attempts["n"] += 1
        yield env.timeout(0.1)
        raise ServerBusyError("busy")

    budget = RetryBudget(ratio=0.0, initial_tokens=1.0)
    policy = RetryPolicy(max_retries=10, backoff_s=1.0)
    _, err = _run(
        env, with_retries(env, always_busy, policy, None, budget=budget)
    )
    assert isinstance(err, ServerBusyError)
    # One initial attempt + the single budgeted retry; the second retry
    # the policy would have allowed was shed.
    assert attempts["n"] == 2
    assert budget.granted == 1
    assert budget.shed == 1


def test_budget_is_shared_across_calls():
    """The bucket is group state: call N's deposits fund call M's retry."""
    env = Environment()
    budget = RetryBudget(ratio=0.5, initial_tokens=0.0)
    policy = RetryPolicy(max_retries=1, backoff_s=0.01)

    def ok():
        yield env.timeout(0.01)
        return "ok"

    def flaky_once(state={"failed": False}):
        if not state["failed"]:
            state["failed"] = True
            yield env.timeout(0.01)
            raise ServerBusyError("busy")
        yield env.timeout(0.01)
        return "ok"

    # Two clean calls deposit 1.0 token between them...
    for _ in range(2):
        _, err = _run(env, with_retries(env, ok, policy, None, budget=budget))
        assert err is None
    # ...which funds the flaky call's single retry.
    result, err = _run(
        env, with_retries(env, flaky_once, policy, None, budget=budget)
    )
    assert err is None and result == "ok"
    assert budget.granted == 1 and budget.shed == 0
