"""Unit tests for request hedging."""

import pytest

from repro.resilience import HedgePolicy, hedged_call
from repro.simcore import Environment
from repro.storage.errors import ServerBusyError


def _run(env, gen):
    box = {}

    def proc(env):
        try:
            box["result"] = yield from gen
        except Exception as exc:  # noqa: BLE001 - test harness
            box["error"] = exc

    env.process(proc(env))
    env.run()
    return box.get("result"), box.get("error")


def _op(env, duration, value="done", error=None):
    yield env.timeout(duration)
    if error is not None:
        raise error
    return value


def _timed(env, gen):
    """Wrap a call so its completion time survives the queue drain."""
    result = yield from gen
    return result, env.now


def test_policy_validation():
    with pytest.raises(ValueError):
        HedgePolicy(percentile=0.0)
    with pytest.raises(ValueError):
        HedgePolicy(default_delay_s=0.0)


def test_hedge_delay_tracks_percentile_after_warmup():
    policy = HedgePolicy(percentile=50.0, default_delay_s=9.0, warmup=4)
    assert policy.hedge_delay() == 9.0  # warmup: default
    for latency in (1.0, 1.0, 1.0, 1.0):
        policy.latency.observe(latency)
    assert policy.hedge_delay() == pytest.approx(1.0)


def test_fast_primary_never_hedges():
    env = Environment()
    policy = HedgePolicy(default_delay_s=1.0)
    pair, err = _run(
        env, _timed(env, hedged_call(env, lambda: _op(env, 0.2), policy))
    )
    assert err is None and pair[0] == "done"
    assert policy.launched == 0
    assert policy.duplicate_fraction == 0.0
    assert pair[1] == pytest.approx(0.2)


def test_slow_primary_launches_backup_which_wins():
    env = Environment()
    policy = HedgePolicy(default_delay_s=0.5)
    durations = iter([10.0, 0.3])  # primary slow, backup fast

    def make():
        return _op(env, next(durations))

    pair, err = _run(env, _timed(env, hedged_call(env, make, policy)))
    assert err is None and pair[0] == "done"
    assert policy.launched == 1 and policy.wins == 1
    # Backup launched at 0.5, finishes at 0.8; the orphaned primary is
    # defused and drained by the run without crashing it.
    assert pair[1] == pytest.approx(0.8)


def test_primary_can_still_win_after_hedge_launch():
    env = Environment()
    policy = HedgePolicy(default_delay_s=0.5)
    durations = iter([0.7, 10.0])

    def make():
        return _op(env, next(durations))

    pair, err = _run(env, _timed(env, hedged_call(env, make, policy)))
    assert err is None and pair[0] == "done"
    assert policy.launched == 1 and policy.wins == 0
    assert pair[1] == pytest.approx(0.7)


def test_primary_failure_before_hedge_propagates():
    env = Environment()
    policy = HedgePolicy(default_delay_s=5.0)
    _, err = _run(
        env,
        hedged_call(
            env, lambda: _op(env, 0.1, error=ServerBusyError("busy")), policy
        ),
    )
    assert isinstance(err, ServerBusyError)
    assert policy.launched == 0


def test_one_racer_failing_does_not_lose_the_race():
    """Primary fails after the hedge launches; the backup's result wins."""
    env = Environment()
    policy = HedgePolicy(default_delay_s=0.5)
    specs = iter([(1.0, ServerBusyError("busy")), (2.0, None)])

    def make():
        duration, error = next(specs)
        return _op(env, duration, error=error)

    pair, err = _run(env, _timed(env, hedged_call(env, make, policy)))
    assert err is None and pair[0] == "done"
    assert policy.wins == 1
    assert pair[1] == pytest.approx(2.5)


def test_raises_only_when_both_attempts_fail():
    env = Environment()
    policy = HedgePolicy(default_delay_s=0.5)
    specs = iter([(1.0, ServerBusyError("a")), (2.0, ServerBusyError("b"))])

    def make():
        duration, error = next(specs)
        return _op(env, duration, error=error)

    _, err = _run(env, hedged_call(env, make, policy))
    assert isinstance(err, ServerBusyError)
    assert env.now == pytest.approx(2.5)
