"""The chaos-drill harness, including the headline storm result.

The headline assertion: under the server_busy_storm schedule, the
budgeted jittered-exponential policy achieves *strictly higher*
client-observed availability AND *strictly lower* retry amplification
than the seed's linear policy, and the circuit breaker walks
closed -> open -> half_open -> closed across the window.
"""

import pytest

from repro.resilience.drills import (
    DRILL_SCENARIOS,
    PolicySpec,
    default_policy_matrix,
    run_drill,
    run_hedge_drill,
    storm_drill_spec,
)


@pytest.fixture(scope="module")
def storm_report():
    return run_drill(storm_drill_spec())


def _contains_subsequence(sequence, wanted):
    it = iter(sequence)
    return all(state in it for state in wanted)


def test_storm_headline_budget_jitter_beats_seed_linear(storm_report):
    budgeted = storm_report.result("jitter-budget")
    seed_linear = storm_report.result("seed-linear")
    assert budgeted.availability > seed_linear.availability
    assert budgeted.amplification < seed_linear.amplification
    # The mechanism, not just the outcome: the budget actually shed
    # retries, and the seed policy piled far more load onto the server
    # while it was inside the fault window.
    assert budgeted.shed_retries > 0
    assert budgeted.window_amplification < seed_linear.window_amplification
    assert seed_linear.window_amplification > 2.0


def test_storm_breaker_cycles_through_states(storm_report):
    states = storm_report.result("jitter-budget-breaker").breaker_states
    assert states[0] == "closed"
    assert _contains_subsequence(
        states, ["closed", "open", "half_open", "closed"]
    )
    assert states[-1] == "closed"  # recovered after the window


def test_storm_slo_verdicts(storm_report):
    assert storm_report.result("jitter-budget").slo_pass
    assert not storm_report.result("no-retry").slo_pass
    assert not storm_report.result("seed-linear").slo_pass
    assert storm_report.passed


def test_storm_report_renders(storm_report):
    table = storm_report.render()
    for policy in default_policy_matrix():
        assert policy.name in table
    assert "verdict" in table and "PASS" in table and "FAIL" in table


def test_breaker_protects_the_server_hardest(storm_report):
    """Fast-failing while open = least in-window load of any policy."""
    with_breaker = storm_report.result("jitter-budget-breaker")
    assert with_breaker.fast_failures > 0
    others = [
        r for r in storm_report.results
        if r.policy != "jitter-budget-breaker"
    ]
    assert all(
        with_breaker.window_amplification < r.window_amplification
        for r in others
    )


def test_drill_metrics_flow_through_registry(storm_report):
    registry = storm_report.result("jitter-budget").registry
    counters = registry.snapshot()
    assert counters["counter:drill.ok"] > 0
    assert registry.read_gauge("retry_budget.shed") > 0


def test_drill_is_deterministic():
    spec = storm_drill_spec(scale=0.25)
    policy = PolicySpec("seed-linear", max_retries=3)
    first = run_drill(spec, [policy]).results[0]
    second = run_drill(spec, [policy]).results[0]
    assert first.ok == second.ok
    assert first.server_attempts == second.server_attempts
    assert first.p99_ms == second.p99_ms


def test_all_cli_scenarios_run():
    for name, make_spec in DRILL_SCENARIOS.items():
        report = run_drill(
            make_spec(scale=0.2),
            [PolicySpec("seed-linear", max_retries=3)],
        )
        assert report.results[0].ops > 0, name


def test_crash_drill_counts_crash_failures():
    spec = DRILL_SCENARIOS["crash"](scale=0.25)
    report = run_drill(spec, [PolicySpec("no-retry", max_retries=0)])
    result = report.results[0]
    assert result.failed > 0
    assert result.availability < 1.0


def test_hedge_drill_cuts_p99_at_bounded_cost():
    report = run_hedge_drill()
    assert report.hedged_p99_ms < report.unhedged_p99_ms
    assert report.p99_speedup > 1.0
    # The cost is real and reported: some duplicate work, but far less
    # than doubling the read load.
    assert 0.0 < report.duplicate_fraction < 0.5
    assert report.hedge_wins > 0
    table = report.render()
    assert "unhedged" in table and "duplicate work" in table
