"""Unit tests for the pluggable backoff strategies."""

import numpy as np
import pytest

from repro.resilience.backoff import RetryPolicy
from repro.resilience import (
    BackoffStrategy,
    CappedExponentialBackoff,
    FullJitterBackoff,
    LinearBackoff,
)
from repro.resilience.backoff import make_backoff


def test_linear_matches_seed_schedule():
    linear = LinearBackoff(base_s=1.0)
    assert [linear.delay(a) for a in range(3)] == [1.0, 2.0, 3.0]


def test_capped_exponential_grows_then_caps():
    exp = CappedExponentialBackoff(base_s=0.5, factor=2.0, cap_s=4.0)
    assert [exp.delay(a) for a in range(6)] == [0.5, 1.0, 2.0, 4.0, 4.0, 4.0]


def test_capped_exponential_validation():
    with pytest.raises(ValueError):
        CappedExponentialBackoff(base_s=0.0)
    with pytest.raises(ValueError):
        CappedExponentialBackoff(factor=0.5)
    with pytest.raises(ValueError):
        CappedExponentialBackoff(cap_s=-1.0)


def test_full_jitter_stays_under_ceiling_and_is_reproducible():
    delays = []
    for _ in range(2):
        jitter = FullJitterBackoff(
            np.random.default_rng(11), base_s=1.0, factor=2.0, cap_s=8.0
        )
        delays.append([jitter.delay(a) for a in range(40)])
    assert delays[0] == delays[1]  # same seed, same schedule
    ceiling = CappedExponentialBackoff(1.0, 2.0, 8.0)
    for attempt in range(4):
        sampled = [
            FullJitterBackoff(np.random.default_rng(s), 1.0, 2.0, 8.0)
            .delay(attempt)
            for s in range(50)
        ]
        assert all(0.0 <= d <= ceiling.delay(attempt) for d in sampled)
        # Full jitter actually uses the range, not a corner of it.
        assert max(sampled) > 0.5 * ceiling.delay(attempt)


def test_strategies_satisfy_the_protocol():
    rng = np.random.default_rng(0)
    for strategy in (
        LinearBackoff(),
        CappedExponentialBackoff(),
        FullJitterBackoff(rng),
    ):
        assert isinstance(strategy, BackoffStrategy)


def test_make_backoff_factory():
    assert isinstance(make_backoff("linear", 1.0), LinearBackoff)
    assert isinstance(
        make_backoff("exponential", 0.5), CappedExponentialBackoff
    )
    jitter = make_backoff("jitter", 0.5, rng=np.random.default_rng(1))
    assert isinstance(jitter, FullJitterBackoff)
    with pytest.raises(ValueError):
        make_backoff("jitter", 0.5)  # rng required
    with pytest.raises(ValueError):
        make_backoff("fibonacci", 0.5)


def test_retry_policy_uses_strategy_when_given():
    exp = CappedExponentialBackoff(base_s=0.25, factor=2.0, cap_s=10.0)
    policy = RetryPolicy(max_retries=3, strategy=exp)
    assert policy.backoff(0) == 0.25
    assert policy.backoff(3) == 2.0


def test_retry_policy_default_is_seed_linear():
    policy = RetryPolicy(max_retries=3, backoff_s=1.0)
    assert [policy.backoff(a) for a in range(3)] == [1.0, 2.0, 3.0]


# -- the retired repro.client.retry shim (removed after a deprecation
# cycle): the canonical import path is the one and only.

def test_legacy_client_retry_module_is_gone():
    with pytest.raises(ImportError):
        import repro.client.retry  # noqa: F401


def test_no_retry_policy_behaves():
    from repro.resilience.backoff import NO_RETRY
    from repro.storage.errors import ServerBusyError

    assert not NO_RETRY.should_retry(ServerBusyError("busy"), attempt=0)
