"""Cross-cutting property-based tests on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import FlowNetwork, Link
from repro.simcore import Environment, RandomStreams
from repro.storage import QueueService
from repro.storage.queue import QueueMessage
from repro.storage.table import Entity, make_entity


@given(
    sizes=st.lists(
        st.floats(min_value=1.0, max_value=500.0), min_size=1, max_size=12
    ),
    capacity=st.floats(min_value=1.0, max_value=200.0),
)
@settings(max_examples=60, deadline=None)
def test_property_flow_network_work_conserving(sizes, capacity):
    """All simultaneous flows on one link finish exactly at total/capacity."""
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", capacity)
    done_times = []

    def client(env, size):
        flow = net.transfer([link], size)
        yield flow.done
        done_times.append(env.now)

    for size in sizes:
        env.process(client(env, size))
    env.run()
    assert max(done_times) == pytest.approx(sum(sizes) / capacity, rel=1e-6)
    assert net.active_count == 0


@given(
    sizes=st.lists(
        st.floats(min_value=1.0, max_value=100.0), min_size=2, max_size=8
    ),
)
@settings(max_examples=40, deadline=None)
def test_property_flow_completion_order_by_size(sizes):
    """Equal-share flows on one link complete in size order."""
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 10.0)
    completions = []

    def client(env, idx, size):
        flow = net.transfer([link], size)
        yield flow.done
        completions.append((env.now, idx))

    for idx, size in enumerate(sizes):
        env.process(client(env, idx, size))
    env.run()
    finished_idx = [idx for _, idx in sorted(completions)]
    expected_idx = [
        idx for _, idx in sorted((s, i) for i, s in enumerate(sizes))
    ]
    # Ties (sizes equal to within float rounding of the fair-share
    # arithmetic) may resolve either way; compare the sizes.
    for got_i, want_i in zip(finished_idx, expected_idx):
        assert sizes[got_i] == pytest.approx(sizes[want_i], rel=1e-9)


@given(
    ops=st.lists(
        st.sampled_from(["add", "receive", "delete"]),
        min_size=1, max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_queue_never_double_delivers_within_visibility(ops):
    """Under arbitrary op interleavings, an invisible message is never
    handed to a second receiver, and deletes require live receipts."""
    env = Environment()
    svc = QueueService(env, RandomStreams(0).stream("q"))
    svc.create_queue("q")
    held = []  # (message, receipt)

    def scenario(env):
        from repro.storage.errors import MessageNotFoundError, QueueEmptyError

        counter = 0
        for op in ops:
            try:
                if op == "add":
                    counter += 1
                    yield from svc.add("q", counter)
                elif op == "receive":
                    msg = yield from svc.receive(
                        "q", visibility_timeout_s=7200.0
                    )
                    # Invariant: not already held by someone else.
                    assert msg.id not in [m.id for m, _ in held]
                    held.append((msg, msg.pop_receipt))
                else:
                    if held:
                        msg, receipt = held.pop(0)
                        yield from svc.delete("q", msg, receipt)
            except (QueueEmptyError, MessageNotFoundError):
                pass

    env.process(scenario(env))
    env.run()
    # Conservation: everything added is held, deleted, or still queued.
    visible_or_hidden = svc.queue_length("q")
    assert visible_or_hidden >= len(held)


@given(
    keys=st.lists(
        st.tuples(
            st.text(min_size=1, max_size=4), st.text(min_size=1, max_size=4)
        ),
        min_size=1, max_size=30,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_table_insert_delete_conservation(keys):
    """Insert-then-delete over arbitrary key multisets conserves rows."""
    env = Environment()
    from repro.storage import TableService
    from repro.storage.errors import EntityAlreadyExistsError

    svc = TableService(env, RandomStreams(0).stream("t"))
    svc.create_table("t")
    inserted = set()

    def scenario(env):
        for pk, rk in keys:
            try:
                yield from svc.insert("t", make_entity(pk, rk))
                inserted.add((pk, rk))
            except EntityAlreadyExistsError:
                assert (pk, rk) in inserted

    env.process(scenario(env))
    env.run()
    assert svc.entity_count("t") == len(inserted)
    assert len(inserted) == len(set(keys))


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_property_degradation_fractions_valid(seed):
    from repro.cluster import DegradationModel

    env = Environment()
    model = DegradationModel(env, RandomStreams(seed).stream("d"))
    fracs = [model.daily_fraction(d) for d in range(100)]
    assert all(0.0 <= f <= 0.5 for f in fracs)


@given(
    n_flows=st.integers(min_value=1, max_value=6),
    cap=st.floats(min_value=0.5, max_value=50.0),
)
@settings(max_examples=40, deadline=None)
def test_property_per_flow_caps_respected_dynamically(n_flows, cap):
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 1e6)
    net.add_cap_hook(lambda flow, n: cap)
    times = []

    def client(env):
        flow = net.transfer([link], 10.0)
        yield flow.done
        times.append(env.now)

    for _ in range(n_flows):
        env.process(client(env))
    env.run()
    # Each flow independently bounded by its cap.
    assert max(times) == pytest.approx(10.0 / cap, rel=1e-6)
