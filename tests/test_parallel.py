"""The parallel sweep executor: correctness and bit-identity.

The contract under test is the one the CLI advertises: ``--jobs N``
produces results *bit-identical* to the in-process serial path, for
every workload family.  The determinism tests compare dataclass fields
to full float precision (``==``, not approx) -- any drift between the
fork and serial paths is a bug, not noise.
"""

import dataclasses

import pytest

from repro.parallel import auto_jobs, resolve_jobs, run_trials

JOBS = 4


def _square(x):
    return x * x


def _describe(a, b=0):
    return (a, b)


def _boom(x):
    raise ValueError(f"boom {x}")


def test_run_trials_serial_matches_map():
    assert run_trials(_square, [(i,) for i in range(6)], jobs=1) == [
        0, 1, 4, 9, 16, 25,
    ]


def test_run_trials_parallel_preserves_submission_order():
    items = [(i,) for i in range(11)]
    assert run_trials(_square, items, jobs=JOBS) == run_trials(
        _square, items, jobs=1
    )


def test_run_trials_dict_items_become_kwargs():
    items = [{"a": 1, "b": 2}, {"a": 3}]
    assert run_trials(_describe, items, jobs=1) == [(1, 2), (3, 0)]
    assert run_trials(_describe, items, jobs=JOBS) == [(1, 2), (3, 0)]


def test_run_trials_worker_exception_propagates():
    with pytest.raises(ValueError, match="boom"):
        run_trials(_boom, [(1,), (2,)], jobs=JOBS)


def test_run_trials_rejects_bad_jobs():
    with pytest.raises(ValueError):
        run_trials(_square, [(1,)], jobs=-2)


def test_auto_jobs_resolution():
    assert auto_jobs() >= 1
    assert resolve_jobs(None) == auto_jobs()
    assert resolve_jobs(0) == auto_jobs()
    assert resolve_jobs(3) == 3


# -- bit-identity of the experiment workloads (the acceptance bar) ------

def test_sweep_blob_parallel_bit_identical():
    from repro.workloads.blob_bench import sweep_blob

    serial = sweep_blob("download", levels=(1, 4, 8), size_mb=4.0,
                        seed=11, jobs=1)
    forked = sweep_blob("download", levels=(1, 4, 8), size_mb=4.0,
                        seed=11, jobs=JOBS)
    assert list(serial) == list(forked)
    for level in serial:
        assert dataclasses.asdict(serial[level]) == dataclasses.asdict(
            forked[level]
        )


def test_sweep_table_parallel_bit_identical():
    from repro.workloads.table_bench import sweep_table

    ops = {"insert": 6, "query": 6, "update": 3, "delete": 6}
    serial = sweep_table(levels=(1, 4), entity_kb=4.0,
                         ops_per_client=ops, seed=5, jobs=1)
    forked = sweep_table(levels=(1, 4), entity_kb=4.0,
                         ops_per_client=ops, seed=5, jobs=JOBS)
    assert list(serial) == list(forked)
    for level in serial:
        assert dataclasses.asdict(serial[level]) == dataclasses.asdict(
            forked[level]
        )


def test_sweep_queue_parallel_bit_identical():
    from repro.workloads.queue_bench import sweep_queue

    serial = sweep_queue("add", levels=(1, 4), message_kb=0.5,
                         ops_per_client=8, seed=9, jobs=1)
    forked = sweep_queue("add", levels=(1, 4), message_kb=0.5,
                         ops_per_client=8, seed=9, jobs=JOBS)
    assert list(serial) == list(forked)
    for level in serial:
        assert dataclasses.asdict(serial[level]) == dataclasses.asdict(
            forked[level]
        )


def test_vm_campaign_parallel_bit_identical():
    from repro.workloads.vm_bench import run_vm_campaign

    serial = run_vm_campaign(runs=6, seed=2, jobs=1)
    forked = run_vm_campaign(runs=6, seed=2, jobs=JOBS)
    assert serial.failed_runs == forked.failed_runs
    assert [dataclasses.asdict(r) for r in serial.records] == [
        dataclasses.asdict(r) for r in forked.records
    ]
