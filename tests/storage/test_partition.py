"""Unit tests for the partition-server front end."""

import pytest

from repro.simcore import Environment, RandomStreams
from repro.storage import OperationTimeoutError, OpSpec, PartitionServer
from repro.storage.queue import QueueService
from repro.storage.table import TableService


def _drive(env, server, ops, errors=None):
    done = []

    def client(env, op):
        try:
            yield from server.execute(op)
            done.append(env.now)
        except OperationTimeoutError as exc:
            if errors is not None:
                errors.append(exc)
            else:
                raise

    for op in ops:
        env.process(client(env, op))
    return done


def _server(env, seed=0, **kw):
    rng = RandomStreams(seed).stream("part")
    return PartitionServer(env, rng, **kw)


def test_deterministic_op_takes_cpu_time():
    env = Environment()
    server = _server(env, frontend_c_s=0.0)
    op = OpSpec(name="op", cpu_s=0.5, deterministic=True)
    done = _drive(env, server, [op])
    env.run()
    assert done == [pytest.approx(0.5)]
    assert server.stats.completed == 1


def test_latch_serializes_conflicting_ops():
    env = Environment()
    server = _server(env, frontend_c_s=0.0)
    op = OpSpec(
        name="w", exclusive_s=1.0, latch_key="k", deterministic=True
    )
    done = _drive(env, server, [op, op, op])
    env.run()
    assert done == [pytest.approx(t) for t in (1.0, 2.0, 3.0)]


def test_different_latch_keys_run_in_parallel():
    env = Environment()
    server = _server(env, frontend_c_s=0.0)
    ops = [
        OpSpec(name="w", exclusive_s=1.0, latch_key=f"k{i}", deterministic=True)
        for i in range(3)
    ]
    done = _drive(env, server, ops)
    env.run()
    assert done == [pytest.approx(1.0)] * 3


def test_cpu_pool_limits_parallel_scans():
    env = Environment()
    server = _server(env, frontend_c_s=0.0, cores=2)
    op = OpSpec(name="scan", cpu_s=1.0, deterministic=True)
    done = _drive(env, server, [op] * 4)
    env.run()
    # 2 cores: two waves of two.
    assert done == [pytest.approx(t) for t in (1.0, 1.0, 2.0, 2.0)]


def test_frontend_penalty_grows_with_concurrency():
    env = Environment()
    # Deterministic: the k-th concurrent request pays c * active**g extra.
    server = _server(env, frontend_c_s=0.01, frontend_gamma=1.0)
    op = OpSpec(name="op", cpu_s=0.05, deterministic=True)
    solo_done = _drive(env, server, [op])
    env.run()
    solo_time = solo_done[0]

    env2 = Environment()
    server2 = _server(env2, frontend_c_s=0.01, frontend_gamma=1.0)
    done = _drive(env2, server2, [op] * 10)
    env2.run()
    assert max(done) > solo_time
    assert server2.stats.peak_concurrency == 10


def test_exclusive_without_latch_key_raises():
    env = Environment()
    server = _server(env)
    op = OpSpec(name="bad", exclusive_s=1.0, latch_key=None)
    errors = []

    def client(env):
        try:
            yield from server.execute(op)
        except ValueError as exc:
            errors.append(exc)

    env.process(client(env))
    env.run()
    assert len(errors) == 1


def test_overload_shedding_fails_requests_under_payload_pressure():
    env = Environment()
    server = _server(
        env,
        frontend_c_s=0.0,
        overload_knee_mb=0.5,
        overload_slope_per_mb=0.05,
        server_timeout_s=5.0,
    )
    op = OpSpec(name="big", cpu_s=0.1, payload_mb=0.25)
    errors = []
    # 100 concurrent 0.25 MB requests -> 25 MB in flight >> 0.5 MB knee.
    _drive(env, server, [op] * 100, errors=errors)
    env.run()
    assert server.stats.shed > 0
    assert len(errors) == server.stats.shed
    # Shed requests stall for the full server timeout.
    assert env.now >= 5.0


def test_no_shedding_below_knee():
    env = Environment()
    server = _server(
        env, overload_knee_mb=10.0, overload_slope_per_mb=0.05
    )
    op = OpSpec(name="small", cpu_s=0.01, payload_mb=0.001)
    _drive(env, server, [op] * 50)
    env.run()
    assert server.stats.shed == 0
    assert server.stats.completed == 50


def test_inflight_accounting_returns_to_zero():
    env = Environment()
    server = _server(env)
    op = OpSpec(name="op", cpu_s=0.05, payload_mb=0.1)
    _drive(env, server, [op] * 20)
    env.run()
    assert server.active_requests == 0
    assert server.inflight_payload_mb == pytest.approx(0.0, abs=1e-9)


def test_stats_track_op_names():
    env = Environment()
    server = _server(env)
    _drive(env, server, [OpSpec(name="a", cpu_s=0.01),
                         OpSpec(name="a", cpu_s=0.01),
                         OpSpec(name="b", cpu_s=0.01)])
    env.run()
    assert server.stats.ops_by_name == {"a": 2, "b": 1}


def test_parameter_validation():
    env = Environment()
    rng = RandomStreams(0).stream("x")
    with pytest.raises(ValueError):
        PartitionServer(env, rng, frontend_c_s=-1.0)


def test_utilization_estimate_bounded():
    env = Environment()
    server = _server(env, cores=1)
    op = OpSpec(name="op", cpu_s=0.5, deterministic=True)
    _drive(env, server, [op] * 4)
    env.run()
    assert 0.0 < server.utilization_estimate() <= 1.0


# -- server selection (the pipeline's routing targets) --------------------


def _streams(seed=0):
    return RandomStreams(seed)


def test_table_server_selection_is_per_partition():
    env = Environment()
    svc = TableService(env, _streams().stream("tables"))
    a = svc.server_for("t", "pk-a")
    b = svc.server_for("t", "pk-b")
    other_table = svc.server_for("u", "pk-a")
    assert a is svc.server_for("t", "pk-a")  # stable identity
    assert a is not b
    assert a is not other_table
    assert a.name == f"{svc.name}/t/pk-a"


def test_queue_server_selection_is_per_queue():
    env = Environment()
    svc = QueueService(env, _streams().stream("queues"))
    a = svc.server_for("q1")
    b = svc.server_for("q2")
    assert a is svc.server_for("q1")
    assert a is not b
    assert a.name == f"{svc.name}/q1"


# -- observer hook: queue/latch wait under concurrency --------------------


def _drive_observed(env, server, ops):
    """Run ops concurrently, returning [(stage, seconds), ...] per op."""
    waits = [[] for _ in ops]

    def client(op, log):
        yield from server.execute(
            op, observer=lambda stage, s: log.append((stage, s))
        )

    for op, log in zip(ops, waits):
        env.process(client(op, log))
    env.run()
    return waits


def test_observer_reports_cpu_wait_under_core_contention():
    env = Environment()
    server = _server(env, frontend_c_s=0.0, cores=1)
    op = OpSpec(name="op", cpu_s=1.0, deterministic=True)
    first, second = _drive_observed(env, server, [op, op])
    assert dict(first)["cpu_wait"] == pytest.approx(0.0)
    # The second op queued behind the first's full CPU slice.
    assert dict(second)["cpu_wait"] == pytest.approx(1.0)


def test_observer_reports_latch_wait_for_conflicting_writes():
    env = Environment()
    server = _server(env, frontend_c_s=0.0)
    op = OpSpec(name="w", exclusive_s=0.5, latch_key="k", deterministic=True)
    first, second, third = _drive_observed(env, server, [op, op, op])
    assert dict(first)["latch_wait"] == pytest.approx(0.0)
    assert dict(second)["latch_wait"] == pytest.approx(0.5)
    assert dict(third)["latch_wait"] == pytest.approx(1.0)


def test_observer_sees_no_wait_on_disjoint_latches():
    env = Environment()
    server = _server(env, frontend_c_s=0.0)
    ops = [
        OpSpec(name="w", exclusive_s=0.5, latch_key=f"k{i}", deterministic=True)
        for i in range(3)
    ]
    for waits in _drive_observed(env, server, ops):
        assert dict(waits)["latch_wait"] == pytest.approx(0.0)


def test_observer_is_optional_and_pure():
    """Observed and unobserved runs complete at identical instants."""
    env1 = Environment()
    server1 = _server(env1, frontend_c_s=0.0, cores=1)
    op = OpSpec(name="op", cpu_s=0.3, deterministic=True)
    done1 = _drive(env1, server1, [op] * 3)
    env1.run()

    env2 = Environment()
    server2 = _server(env2, frontend_c_s=0.0, cores=1)
    _drive_observed(env2, server2, [op] * 3)
    assert done1 == [pytest.approx(t) for t in (0.3, 0.6, 0.9)]
    assert env2.now == pytest.approx(env1.now)


def test_shed_request_error_carries_server_context():
    env = Environment()
    server = _server(
        env,
        frontend_c_s=0.0,
        overload_knee_mb=0.5,
        overload_slope_per_mb=0.05,
        server_timeout_s=5.0,
    )
    op = OpSpec(name="big", cpu_s=0.1, payload_mb=0.25)
    errors = []
    _drive(env, server, [op] * 100, errors=errors)
    env.run()
    assert errors
    err = errors[0]
    assert isinstance(err, OperationTimeoutError)
    assert err.service == server.name
    assert err.op == "big"
