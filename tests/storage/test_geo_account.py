"""Tests for geo-replicated accounts: state machine, lag ledger, monitor."""

import pytest

from repro.simcore import Environment, RandomStreams
from repro.storage import (
    AccountFailoverError,
    GeoReplicatedAccount,
    ReplicationConfig,
)
from repro.storage.account import (
    GEO_FAILING_OVER,
    GEO_PRIMARY,
    GEO_SECONDARY,
)


def _geo(seed=0, **cfg):
    env = Environment()
    streams = RandomStreams(seed)
    geo = GeoReplicatedAccount(
        env, streams, name="geo",
        replication=ReplicationConfig(**cfg) if cfg else None,
    )
    return env, geo


def test_replication_config_validation():
    with pytest.raises(ValueError):
        ReplicationConfig(mode="psychic")
    with pytest.raises(ValueError):
        ReplicationConfig(lag_s=-1.0)
    with pytest.raises(ValueError):
        ReplicationConfig(detection_interval_s=0.0)
    with pytest.raises(ValueError):
        ReplicationConfig(confirm_probes=0)


def test_replicas_share_one_tracer():
    _, geo = _geo()
    assert geo.primary.tracer is geo.secondary.tracer is geo.tracer
    assert geo.primary.name == "geo-primary"
    assert geo.secondary.name == "geo-secondary"


def test_idle_geo_account_adds_no_events():
    env, geo = _geo()
    env.run()
    assert env.now == 0.0
    assert geo.state == GEO_PRIMARY


def test_failover_state_machine_and_read_only_window():
    env, geo = _geo(promotion_s=30.0)
    seen = {}

    def scenario(env):
        assert geo.read_replica() == "primary"
        assert geo.write_replica() == "primary"
        proc = env.process(geo.failover())
        yield env.timeout(1.0)
        # Mid-promotion: reads already route to the secondary, writes
        # are rejected retryably everywhere.
        seen["mid_state"] = geo.state
        seen["mid_read"] = geo.read_replica()
        seen["mid_write"] = geo.write_replica()
        with pytest.raises(AccountFailoverError):
            geo.write_guard("table.insert", "primary")
        with pytest.raises(AccountFailoverError):
            geo.write_guard("table.insert", "secondary")
        yield proc
        seen["end_state"] = geo.state
        seen["end_write"] = geo.write_replica()
        # After promotion, only the secondary accepts writes.
        geo.write_guard("table.insert", "secondary")
        with pytest.raises(AccountFailoverError):
            geo.write_guard("table.insert", "primary")

    env.process(scenario(env))
    env.run()
    assert seen == {
        "mid_state": GEO_FAILING_OVER,
        "mid_read": "secondary",
        "mid_write": None,
        "end_state": GEO_SECONDARY,
        "end_write": "secondary",
    }
    assert geo.failovers == 1
    assert env.now == 30.0  # the promotion window, started at t=0


def test_failover_is_noop_unless_primary_active():
    env, geo = _geo(promotion_s=0.0)

    def scenario(env):
        yield from geo.failover()
        assert geo.state == GEO_SECONDARY
        yield from geo.failover()  # already failed over: no-op
        assert geo.failovers == 1
        yield from geo.failback()
        assert geo.state == GEO_PRIMARY
        assert geo.failbacks == 1

    env.process(scenario(env))
    env.run()


def test_write_ledger_counts_only_recent_writes():
    env, geo = _geo(lag_s=5.0)

    def scenario(env):
        geo.on_commit("table.insert", "primary")
        yield env.timeout(2.0)
        geo.on_commit("table.update", "primary")
        assert geo.writes_at_risk(env.now) == 2
        yield env.timeout(4.0)  # first write is now past the lag horizon
        assert geo.writes_at_risk(env.now) == 1
        # Reads and writes against the non-active replica never ledger.
        geo.on_commit("table.query", "primary")
        geo.on_commit("table.insert", "secondary")
        assert geo.writes_at_risk(env.now) == 1

    env.process(scenario(env))
    env.run()


def test_failover_loses_writes_inside_replication_lag():
    env, geo = _geo(lag_s=5.0, promotion_s=0.0)

    def scenario(env):
        geo.on_commit("table.insert", "primary")
        geo.on_commit("table.insert", "primary")
        yield env.timeout(10.0)  # both replicate before the failover
        geo.on_commit("table.insert", "primary")
        yield from geo.failover()

    env.process(scenario(env))
    env.run()
    assert geo.lost_writes == 1
    # The ledger resets with the promotion.
    assert geo.writes_at_risk(env.now) == 0


def test_monitor_requires_automatic_mode():
    _, geo = _geo(mode="manual")
    with pytest.raises(ValueError):
        geo.start_monitor(lambda: True)


def test_monitor_confirms_then_fails_over_and_back():
    env, geo = _geo(
        mode="automatic", detection_interval_s=10.0, confirm_probes=3,
        failback_probes=2, promotion_s=5.0,
    )
    down = {"value": False}
    transitions = []

    def watcher(env):
        last = geo.state
        while env.now < 300.0:
            if geo.state != last:
                transitions.append((env.now, geo.state))
                last = geo.state
            yield env.timeout(1.0)

    def outage(env):
        yield env.timeout(15.0)
        down["value"] = True
        yield env.timeout(40.0)
        down["value"] = False

    env.process(watcher(env))
    env.process(outage(env))
    geo.start_monitor(lambda: not down["value"], horizon_s=300.0)
    env.run(until=320.0)
    # Probes fail at t=20,30,40 (3 consecutive) -> failover at 40,
    # promoted at 45 (the promotion stalls the monitor's cadence); the
    # outage ends at 55, so probes at 55 and 65 confirm the failback.
    assert transitions == [
        (40.0, GEO_FAILING_OVER),
        (45.0, GEO_SECONDARY),
        (65.0, GEO_FAILING_OVER),
        (70.0, GEO_PRIMARY),
    ]
    assert geo.failovers == 1
    assert geo.failbacks == 1


def test_monitor_without_auto_failback_stays_on_secondary():
    env, geo = _geo(
        mode="automatic", detection_interval_s=10.0, confirm_probes=1,
        promotion_s=0.0, auto_failback=False,
    )
    down = {"value": True}

    def recovery(env):
        yield env.timeout(25.0)
        down["value"] = False

    env.process(recovery(env))
    geo.start_monitor(lambda: not down["value"], horizon_s=200.0)
    env.run(until=220.0)
    assert geo.state == GEO_SECONDARY
    assert geo.failbacks == 0
