"""Unit tests for queue-service semantics (visibility, receipts)."""

import pytest

from repro.simcore import Environment, RandomStreams
from repro.storage import QueueEmptyError, QueueService
from repro.storage.errors import MessageNotFoundError


def _svc(env, seed=0):
    svc = QueueService(env, RandomStreams(seed).stream("queue"))
    svc.create_queue("q")
    return svc


def _run(env, gen):
    box = {}

    def proc(env):
        try:
            box["result"] = yield from gen
        except Exception as exc:  # noqa: BLE001 - test harness
            box["error"] = exc

    env.process(proc(env))
    env.run()
    return box.get("result"), box.get("error")


def test_add_then_receive_fifo_order():
    env = Environment()
    svc = _svc(env)
    _run(env, svc.add("q", "first"))
    _run(env, svc.add("q", "second"))
    m1, _ = _run(env, svc.receive("q"))
    m2, _ = _run(env, svc.receive("q"))
    assert m1.payload == "first"
    assert m2.payload == "second"


def test_peek_does_not_consume():
    env = Environment()
    svc = _svc(env)
    _run(env, svc.add("q", "only"))
    p1, _ = _run(env, svc.peek("q"))
    p2, _ = _run(env, svc.peek("q"))
    assert p1.payload == p2.payload == "only"
    assert svc.queue_length("q") == 1
    assert p1.dequeue_count == 0


def test_receive_hides_message_for_visibility_timeout():
    env = Environment()
    svc = _svc(env)
    _run(env, svc.add("q", "m"))
    msg, _ = _run(env, svc.receive("q", visibility_timeout_s=100.0))
    assert msg.dequeue_count == 1
    # Immediately after, nothing is visible.
    _, err = _run(env, svc.receive("q"))
    assert isinstance(err, QueueEmptyError)


def test_message_reappears_after_visibility_timeout():
    env = Environment()
    svc = _svc(env)
    results = {}

    def scenario(env):
        yield from svc.add("q", "retry-me")
        msg = yield from svc.receive("q", visibility_timeout_s=10.0)
        results["first"] = msg.id
        # Simulate a crashed worker: never delete; wait out the timeout.
        yield env.timeout(11.0)
        again = yield from svc.receive("q", visibility_timeout_s=10.0)
        results["second"] = again.id
        results["dequeues"] = again.dequeue_count

    env.process(scenario(env))
    env.run()
    assert results["first"] == results["second"]
    assert results["dequeues"] == 2


def test_delete_with_valid_receipt_removes_message():
    env = Environment()
    svc = _svc(env)
    results = {}

    def scenario(env):
        yield from svc.add("q", "done")
        msg = yield from svc.receive("q")
        yield from svc.delete("q", msg, msg.pop_receipt)
        results["len"] = svc.queue_length("q")

    env.process(scenario(env))
    env.run()
    assert results["len"] == 0


def test_delete_with_stale_receipt_fails():
    """The Section 5.2 hazard: a slow worker's delete races a retry."""
    env = Environment()
    svc = _svc(env)
    results = {}

    def scenario(env):
        yield from svc.add("q", "contested")
        slow = yield from svc.receive("q", visibility_timeout_s=5.0)
        stale_receipt = slow.pop_receipt
        yield env.timeout(6.0)  # visibility expires
        fast = yield from svc.receive("q", visibility_timeout_s=60.0)
        assert fast.id == slow.id
        try:
            yield from svc.delete("q", slow, stale_receipt)
        except MessageNotFoundError:
            results["stale_rejected"] = True
        yield from svc.delete("q", fast, fast.pop_receipt)
        results["len"] = svc.queue_length("q")

    env.process(scenario(env))
    env.run()
    assert results == {"stale_rejected": True, "len": 0}


def test_receive_empty_queue_raises():
    env = Environment()
    svc = _svc(env)
    _, err = _run(env, svc.receive("q"))
    assert isinstance(err, QueueEmptyError)
    _, err = _run(env, svc.peek("q"))
    assert isinstance(err, QueueEmptyError)


def test_unknown_queue_raises():
    env = Environment()
    svc = _svc(env)
    _, err = _run(env, svc.add("ghost", "x"))
    assert isinstance(err, QueueEmptyError)


def test_visibility_timeout_validation():
    env = Environment()
    svc = _svc(env)
    with pytest.raises(ValueError):
        # The 2-hour maximum from Section 5.2.
        next(iter(()), None)  # placeholder to keep flake quiet
        _run_gen = svc.receive("q", visibility_timeout_s=7201.0)
        next(_run_gen)
    with pytest.raises(ValueError):
        next(svc.receive("q", visibility_timeout_s=0.0))


def test_queue_length_counts_only_undeleted():
    env = Environment()
    svc = _svc(env)

    def scenario(env):
        for i in range(5):
            yield from svc.add("q", i)
        msg = yield from svc.receive("q")
        yield from svc.delete("q", msg, msg.pop_receipt)

    env.process(scenario(env))
    env.run()
    assert svc.queue_length("q") == 4


def test_operation_cost_independent_of_queue_depth():
    """Section 3.3: no variation from 200k to 2M messages.

    The model must keep per-op cost O(log n); we verify add+receive
    latency does not grow measurably with a deep backlog.
    """
    env = Environment()
    svc = _svc(env)
    state = svc._queues["q"]
    # Pre-fill cheaply (bypassing the data plane's simulated latency).
    from repro.storage.queue import QueueMessage

    for i in range(50_000):
        state.push(QueueMessage(payload=i, size_kb=0.5, visible_at=0.0))
    t0 = env.now
    _run(env, svc.receive("q"))
    deep_latency = env.now - t0

    env2 = Environment()
    svc2 = _svc(env2)
    _run(env2, svc2.add("q", "solo"))
    t0 = env2.now
    _run(env2, svc2.receive("q"))
    shallow_latency = env2.now - t0
    assert deep_latency < shallow_latency * 3


def test_receive_batch_drains_up_to_max():
    env = Environment()
    svc = _svc(env)
    results = {}

    def scenario(env):
        for i in range(5):
            yield from svc.add("q", i)
        batch = yield from svc.receive_batch("q", max_messages=3)
        results["first"] = [m.payload for m in batch]
        rest = yield from svc.receive_batch("q", max_messages=32)
        results["rest"] = [m.payload for m in rest]
        empty = yield from svc.receive_batch("q")
        results["empty"] = empty

    env.process(scenario(env))
    env.run()
    assert results["first"] == [0, 1, 2]
    assert results["rest"] == [3, 4]
    assert results["empty"] == []


def test_receive_batch_hides_all_returned_messages():
    env = Environment()
    svc = _svc(env)
    results = {}

    def scenario(env):
        for i in range(4):
            yield from svc.add("q", i)
        batch = yield from svc.receive_batch(
            "q", max_messages=4, visibility_timeout_s=100.0
        )
        assert all(m.dequeue_count == 1 for m in batch)
        follow_up = yield from svc.receive_batch("q")
        results["follow_up"] = follow_up
        # Delete two; the other two reappear after the timeout.
        for m in batch[:2]:
            yield from svc.delete("q", m, m.pop_receipt)
        yield env.timeout(120.0)
        reappeared = yield from svc.receive_batch("q")
        results["reappeared"] = sorted(m.payload for m in reappeared)

    env.process(scenario(env))
    env.run()
    assert results["follow_up"] == []
    assert results["reappeared"] == [2, 3]


def test_receive_batch_validation():
    env = Environment()
    svc = _svc(env)
    with pytest.raises(ValueError):
        next(svc.receive_batch("q", max_messages=0))
    with pytest.raises(ValueError):
        next(svc.receive_batch("q", max_messages=33))
    with pytest.raises(ValueError):
        next(svc.receive_batch("q", visibility_timeout_s=0.0))


def test_receive_batch_cheaper_than_singletons():
    env = Environment()
    svc = _svc(env)
    from repro.storage.queue import QueueMessage

    state = svc._queues["q"]
    for i in range(64):
        state.push(QueueMessage(payload=i, size_kb=0.5, visible_at=0.0))

    def batched(env):
        got = 0
        while got < 32:
            batch = yield from svc.receive_batch("q", max_messages=32)
            got += len(batch)

    t0 = env.now
    env.process(batched(env))
    env.run()
    batch_time = env.now - t0

    def singles(env):
        for _ in range(32):
            yield from svc.receive("q")

    t0 = env.now
    env.process(singles(env))
    env.run()
    singles_time = env.now - t0
    assert batch_time < singles_time / 4
