"""Tests for the extended blob API (listing, conditional ops, copies,
block upload) and the parallel client utilities."""

import pytest

from repro.client.parallel import StripedReader, parallel_upload, replicate_blob
from repro.network import Datacenter, FlowNetwork
from repro.simcore import Environment, RandomStreams
from repro.storage import BlobService
from repro.storage.errors import (
    BlobAlreadyExistsError,
    BlobNotFoundError,
    PreconditionFailedError,
)


class _EP:
    def __init__(self, host):
        self.nic_tx, self.nic_rx = host.nic_tx, host.nic_rx


def _setup(seed=0):
    env = Environment()
    net = FlowNetwork(env)
    dc = Datacenter(racks=4, hosts_per_rack=8)
    svc = BlobService(env, RandomStreams(seed).stream("blob"), net)
    svc.create_container("c")
    return env, svc, [_EP(h) for h in dc.hosts]


def _run(env, gen):
    box = {}

    def proc(env):
        try:
            box["result"] = yield from gen
        except Exception as exc:  # noqa: BLE001 - test harness
            box["error"] = exc

    env.process(proc(env))
    env.run()
    return box.get("result"), box.get("error")


def test_list_blobs_with_prefix():
    env, svc, clients = _setup()
    for name in ("a/x", "a/y", "b/z"):
        svc.seed_blob("c", name, 1.0)
    listed, err = _run(env, svc.list_blobs("c", prefix="a/"))
    assert err is None
    assert [m.name for m in listed] == ["a/x", "a/y"]
    all_blobs, _ = _run(env, svc.list_blobs("c"))
    assert len(all_blobs) == 3


def test_conditional_download_checks_etag():
    env, svc, clients = _setup()
    meta = svc.seed_blob("c", "b", 2.0)
    got, err = _run(env, svc.download_if_match(clients[0], "c", "b", meta.etag))
    assert err is None and got is meta
    _, err = _run(
        env, svc.download_if_match(clients[0], "c", "b", meta.etag + 999)
    )
    assert isinstance(err, PreconditionFailedError)


def test_copy_blob_server_side():
    env, svc, clients = _setup()
    original = svc.seed_blob("c", "src", 50.0)
    t0 = env.now
    copy, err = _run(env, svc.copy_blob("c", "src", "dst"))
    assert err is None
    assert copy.size_mb == 50.0
    assert copy.content_token == original.content_token
    assert copy.etag != original.etag
    # Server-side copy takes size/copy-bandwidth, no client involvement.
    assert env.now - t0 == pytest.approx(50.0 / 100.0, abs=0.3)
    _, err = _run(env, svc.copy_blob("c", "src", "dst"))
    assert isinstance(err, BlobAlreadyExistsError)
    _, err = _run(env, svc.copy_blob("c", "ghost", "x"))
    assert isinstance(err, BlobNotFoundError)


def test_block_upload_and_commit():
    env, svc, clients = _setup()

    def scenario(env):
        yield from svc.put_block(clients[0], "c", "blob", "b0", 5.0)
        yield from svc.put_block(clients[0], "c", "blob", "b1", 7.0)
        meta = yield from svc.put_block_list("c", "blob", ("b0", "b1"))
        return meta

    meta, err = _run(env, scenario(env))
    assert err is None
    assert meta.size_mb == pytest.approx(12.0)
    assert svc.exists("c", "blob")


def test_block_commit_missing_block_fails():
    env, svc, clients = _setup()

    def scenario(env):
        yield from svc.put_block(clients[0], "c", "blob", "b0", 5.0)
        yield from svc.put_block_list("c", "blob", ("b0", "missing"))

    _, err = _run(env, scenario(env))
    assert isinstance(err, BlobNotFoundError)


def test_block_validation():
    env, svc, clients = _setup()
    with pytest.raises(ValueError):
        next(svc.put_block(clients[0], "c", "b", "id", 0.0))


def test_replicate_blob_creates_copies():
    env, svc, clients = _setup()
    svc.seed_blob("c", "hot", 10.0)
    names, err = _run(env, replicate_blob(svc, "c", "hot", 3))
    assert err is None
    assert names == ["hot", "hot.copy1", "hot.copy2"]
    assert all(svc.exists("c", n) for n in names)
    # Idempotent: replicating again does not fail.
    names2, err = _run(env, replicate_blob(svc, "c", "hot", 3))
    assert err is None and names2 == names


def test_replicate_validation():
    env, svc, clients = _setup()
    svc.seed_blob("c", "hot", 10.0)
    with pytest.raises(ValueError):
        next(replicate_blob(svc, "c", "hot", 0))


def test_striped_reader_round_robin():
    env, svc, clients = _setup()
    for n in ("hot", "hot.copy1"):
        svc.seed_blob("c", n, 1.0)
    reader = StripedReader(svc, "c", ["hot", "hot.copy1"])
    picks = [reader.pick_copy() for _ in range(4)]
    assert picks == ["hot", "hot.copy1", "hot", "hot.copy1"]
    with pytest.raises(ValueError):
        StripedReader(svc, "c", [])


def test_striping_raises_aggregate_bandwidth():
    def aggregate(copies, n_readers=48):
        env, svc, clients = _setup(seed=copies)
        svc.seed_blob("c", "hot", 100.0)
        names_box = {}

        def setup(env):
            names_box["names"] = yield from replicate_blob(
                svc, "c", "hot", copies
            )

        env.process(setup(env))
        env.run()
        reader = StripedReader(svc, "c", names_box["names"])

        def dl(env, client):
            yield from reader.download(client)

        start_done = env.now
        for client in clients[:n_readers]:
            env.process(dl(env, client))
        env.run()
        return n_readers * 100.0 / (env.now - start_done)

    single = aggregate(1)
    striped = aggregate(3)
    assert striped > single * 1.5  # Section 6.1 recommendation pays off


def test_parallel_upload_beats_single_stream():
    env, svc, clients = _setup()

    def single(env):
        t0 = env.now
        yield from svc.upload(clients[0], "c", "single", 60.0)
        return 60.0 / (env.now - t0)

    rate_single, _ = _run(env, single(env))

    env2, svc2, clients2 = _setup(seed=1)

    def parallel(env):
        t0 = env.now
        yield from parallel_upload(
            svc2, clients2[0], "c", "par", 60.0, parallelism=4
        )
        return 60.0 / (env.now - t0)

    rate_parallel, err = _run(env2, parallel(env2))
    assert err is None
    assert rate_parallel > rate_single * 1.6
    assert svc2.get_meta("c", "par").size_mb == pytest.approx(60.0)


def test_parallel_upload_validation():
    env, svc, clients = _setup()
    with pytest.raises(ValueError):
        next(parallel_upload(svc, clients[0], "c", "x", 0.0))
    with pytest.raises(ValueError):
        next(parallel_upload(svc, clients[0], "c", "x", 1.0, parallelism=0))
