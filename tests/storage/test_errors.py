"""The unified error taxonomy: context, classification, alignment."""

import pytest

from repro.resilience.breaker import CircuitBreaker
from repro.simcore import Environment, RandomStreams
from repro.storage import StorageAccount
from repro.storage.errors import (
    BlobNotFoundError,
    ConnectionFailureError,
    CorruptBlobError,
    EntityAlreadyExistsError,
    EntityNotFoundError,
    MessageNotFoundError,
    OperationTimeoutError,
    PreconditionFailedError,
    QueueEmptyError,
    ServerBusyError,
    StorageError,
    is_transport_failure,
)

TRANSPORT = (
    OperationTimeoutError,
    ServerBusyError,
    ConnectionFailureError,
    CorruptBlobError,
)
SEMANTIC = (
    BlobNotFoundError,
    EntityNotFoundError,
    EntityAlreadyExistsError,
    PreconditionFailedError,
    QueueEmptyError,
    MessageNotFoundError,
)


def test_context_string():
    err = StorageError("boom", service="account.tables", op="table.insert")
    assert err.service == "account.tables"
    assert err.op == "table.insert"
    assert err.context() == "account.tables/table.insert"
    assert str(err) == "boom"


def test_context_defaults_empty():
    err = StorageError("boom")
    assert err.service is None and err.op is None
    assert err.context() == ""
    assert StorageError("x", service="blobs").context() == "blobs"


@pytest.mark.parametrize("cls", TRANSPORT)
def test_transport_failures_are_retryable(cls):
    assert is_transport_failure(cls("x"))


@pytest.mark.parametrize("cls", SEMANTIC)
def test_semantic_failures_are_not_retryable(cls):
    assert not is_transport_failure(cls("x"))


def test_non_storage_errors_are_not_transport():
    assert not is_transport_failure(TimeoutError("os-level"))
    assert not is_transport_failure(ValueError("x"))


@pytest.mark.parametrize("cls", TRANSPORT + SEMANTIC)
def test_breaker_classification_matches_retry_classification(cls):
    err = cls("x")
    assert CircuitBreaker.counts_as_failure(err) == is_transport_failure(err)


def _run(env, gen):
    box = {}

    def proc():
        try:
            yield from gen
        except StorageError as exc:
            box["error"] = exc

    env.process(proc())
    env.run()
    return box["error"]


def _account():
    env = Environment()
    return env, StorageAccount(env, RandomStreams(0))


def test_table_errors_carry_service_and_op():
    env, account = _account()
    account.tables.create_table("t")
    err = _run(env, account.tables.query("t", "pk", "missing"))
    assert isinstance(err, EntityNotFoundError)
    assert err.service == account.tables.name
    assert err.op == "table.query"


def test_queue_errors_carry_service_and_op():
    env, account = _account()
    account.queues.create_queue("q")
    err = _run(env, account.queues.receive("q"))
    assert isinstance(err, QueueEmptyError)
    assert err.service == account.queues.name
    assert err.op == "queue.receive"


def test_blob_errors_carry_service():
    env, account = _account()
    account.blobs.create_container("c")
    err = _run(env, account.blobs.delete_blob("c", "missing"))
    assert isinstance(err, BlobNotFoundError)
    assert err.service == account.blobs.name
