"""Unit tests for blob-service semantics and bandwidth shaping."""

import pytest

from repro.network import Datacenter, FlowNetwork
from repro.simcore import Environment, RandomStreams
from repro.storage import (
    BlobAlreadyExistsError,
    BlobNotFoundError,
    BlobService,
    CorruptBlobError,
)


class _Endpoint:
    """Minimal NetworkEndpoint: one host's NIC pair."""

    def __init__(self, host):
        self.nic_tx = host.nic_tx
        self.nic_rx = host.nic_rx


def _setup(seed=0, replicas=3):
    env = Environment()
    net = FlowNetwork(env)
    dc = Datacenter(racks=2, hosts_per_rack=8)
    svc = BlobService(
        env, RandomStreams(seed).stream("blob"), net, replicas=replicas
    )
    svc.create_container("c")
    clients = [_Endpoint(h) for h in dc.hosts]
    return env, net, svc, clients


def _run(env, gen):
    box = {}

    def proc(env):
        try:
            box["result"] = yield from gen
        except Exception as exc:  # noqa: BLE001 - test harness
            box["error"] = exc

    env.process(proc(env))
    env.run()
    return box.get("result"), box.get("error")


def test_upload_then_download_roundtrip():
    env, _net, svc, clients = _setup()
    meta, err = _run(env, svc.upload(clients[0], "c", "b1", 10.0))
    assert err is None
    assert svc.exists("c", "b1")
    got, err = _run(env, svc.download(clients[1], "c", "b1"))
    assert err is None
    assert got.content_token == meta.content_token
    assert got.size_mb == 10.0


def test_upload_existing_name_fails():
    env, _net, svc, clients = _setup()
    _run(env, svc.upload(clients[0], "c", "b", 1.0))
    _, err = _run(env, svc.upload(clients[0], "c", "b", 1.0))
    assert isinstance(err, BlobAlreadyExistsError)


def test_upload_overwrite_allowed():
    env, _net, svc, clients = _setup()
    first, _ = _run(env, svc.upload(clients[0], "c", "b", 1.0))
    second, err = _run(
        env, svc.upload(clients[0], "c", "b", 2.0, overwrite=True)
    )
    assert err is None
    assert second.etag != first.etag
    assert svc.get_meta("c", "b").size_mb == 2.0


def test_racing_uploads_one_winner():
    """Two concurrent uploads of the same name: exactly one commits."""
    env, _net, svc, clients = _setup()
    outcomes = []

    def racer(env, client, tag):
        try:
            yield from svc.upload(client, "c", "contested", 5.0)
            outcomes.append((tag, "ok"))
        except BlobAlreadyExistsError:
            outcomes.append((tag, "exists"))

    env.process(racer(env, clients[0], "a"))
    env.process(racer(env, clients[1], "b"))
    env.run()
    assert sorted(o for _, o in outcomes) == ["exists", "ok"]
    assert svc.blob_count("c") == 1


def test_download_missing_blob_fails():
    env, _net, svc, clients = _setup()
    _, err = _run(env, svc.download(clients[0], "c", "ghost"))
    assert isinstance(err, BlobNotFoundError)


def test_corruption_injection():
    env, _net, svc, clients = _setup()
    _run(env, svc.upload(clients[0], "c", "b", 1.0))
    _, err = _run(
        env, svc.download(clients[1], "c", "b", corrupt_probability=1.0)
    )
    assert isinstance(err, CorruptBlobError)


def test_delete_blob():
    env, _net, svc, clients = _setup()
    _run(env, svc.upload(clients[0], "c", "b", 1.0))
    _, err = _run(env, svc.delete_blob("c", "b"))
    assert err is None
    assert not svc.exists("c", "b")
    _, err = _run(env, svc.delete_blob("c", "b"))
    assert isinstance(err, BlobNotFoundError)


def test_single_client_download_near_per_client_cap():
    """One reader should see ~13 MB/s (the Section 6.1 limitation)."""
    env, _net, svc, clients = _setup()
    _run(env, svc.upload(clients[0], "c", "big", 100.0))
    t0 = env.now
    _, err = _run(env, svc.download(clients[1], "c", "big"))
    assert err is None
    bw = 100.0 / (env.now - t0)
    assert 10.0 <= bw <= 13.5


def test_concurrent_downloads_slower_per_client():
    env, _net, svc, clients = _setup()
    _run(env, svc.upload(clients[0], "c", "shared", 50.0))
    times = []

    def reader(env, client):
        t0 = env.now
        yield from svc.download(client, "c", "shared")
        times.append(env.now - t0)

    for client in clients[1:9]:  # 8 concurrent readers
        env.process(reader(env, client))
    env.run()
    per_client_bw = [50.0 / t for t in times]
    # Still near the per-connection cap at 8 clients (Fig. 1 plateau).
    assert all(8.0 <= bw <= 13.5 for bw in per_client_bw)


def test_upload_half_download_bandwidth_solo():
    env, _net, svc, clients = _setup()
    t0 = env.now
    _run(env, svc.upload(clients[0], "c", "up", 50.0))
    up_bw = 50.0 / (env.now - t0)
    # Section 3.1: upload is about half the download bandwidth.
    assert 4.0 <= up_bw <= 8.0


def test_replica_ablation_scales_read_trunk():
    _env1, _n1, svc1, _c1 = _setup(replicas=1)
    _env3, _n3, svc3, _c3 = _setup(replicas=3)
    link1 = svc1.download_link("c", "b")
    link3 = svc3.download_link("c", "b")
    assert link3.capacity_mbps == pytest.approx(3 * link1.capacity_mbps)


def test_validation():
    env, net, svc, clients = _setup()
    with pytest.raises(ValueError):
        next(svc.upload(clients[0], "c", "zero", 0.0))
    with pytest.raises(ValueError):
        BlobService(env, RandomStreams(0).stream("x"), net, replicas=0)


def test_total_stored_accounting():
    env, _net, svc, clients = _setup()
    _run(env, svc.upload(clients[0], "c", "a", 3.0))
    _run(env, svc.upload(clients[0], "c", "b", 7.0))
    assert svc.total_stored_mb() == pytest.approx(10.0)
    assert svc.active_transfers() == (0, 0)
