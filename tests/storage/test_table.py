"""Unit tests for table-service semantics."""

import pytest

from repro.simcore import Environment, RandomStreams
from repro.storage import (
    EntityAlreadyExistsError,
    EntityNotFoundError,
    TableService,
)
from repro.storage.errors import PreconditionFailedError
from repro.storage.table import make_entity


def _svc(env, seed=0):
    return TableService(env, RandomStreams(seed).stream("table"))


def _run(env, gen):
    """Drive a service generator to completion; returns (result, error)."""
    box = {}

    def proc(env):
        try:
            box["result"] = yield from gen
        except Exception as exc:  # noqa: BLE001 - test harness
            box["error"] = exc

    env.process(proc(env))
    env.run()
    return box.get("result"), box.get("error")


def test_insert_then_query_roundtrip():
    env = Environment()
    svc = _svc(env)
    svc.create_table("t")
    entity = make_entity("p", "r1", size_kb=4.0)
    _, err = _run(env, svc.insert("t", entity))
    assert err is None
    found, err = _run(env, svc.query("t", "p", "r1"))
    assert err is None
    assert found is entity
    assert svc.entity_count("t") == 1


def test_insert_duplicate_key_fails():
    env = Environment()
    svc = _svc(env)
    svc.create_table("t")
    _run(env, svc.insert("t", make_entity("p", "r")))
    _, err = _run(env, svc.insert("t", make_entity("p", "r")))
    assert isinstance(err, EntityAlreadyExistsError)


def test_query_missing_entity_fails():
    env = Environment()
    svc = _svc(env)
    svc.create_table("t")
    _, err = _run(env, svc.query("t", "p", "nope"))
    assert isinstance(err, EntityNotFoundError)


def test_unconditional_update_replaces_and_bumps_etag():
    env = Environment()
    svc = _svc(env)
    svc.create_table("t")
    original = make_entity("p", "r")
    _run(env, svc.insert("t", original))
    first_etag = original.etag
    replacement = make_entity("p", "r", f1=99)
    _, err = _run(env, svc.update("t", replacement))
    assert err is None
    assert replacement.etag != first_etag
    found, _ = _run(env, svc.query("t", "p", "r"))
    assert found.properties["f1"] == 99


def test_conditional_update_enforces_etag():
    env = Environment()
    svc = _svc(env)
    svc.create_table("t")
    entity = make_entity("p", "r")
    _run(env, svc.insert("t", entity))
    stale = entity.etag
    _run(env, svc.update("t", make_entity("p", "r")))  # bumps etag
    _, err = _run(env, svc.update("t", make_entity("p", "r"), if_match=stale))
    assert isinstance(err, PreconditionFailedError)


def test_update_missing_entity_fails():
    env = Environment()
    svc = _svc(env)
    svc.create_table("t")
    _, err = _run(env, svc.update("t", make_entity("p", "ghost")))
    assert isinstance(err, EntityNotFoundError)


def test_delete_removes_entity():
    env = Environment()
    svc = _svc(env)
    svc.create_table("t")
    _run(env, svc.insert("t", make_entity("p", "r")))
    _, err = _run(env, svc.delete("t", "p", "r"))
    assert err is None
    assert svc.entity_count("t") == 0
    _, err = _run(env, svc.delete("t", "p", "r"))
    assert isinstance(err, EntityNotFoundError)


def test_query_by_property_scans_partition():
    env = Environment()
    svc = _svc(env)
    svc.create_table("t")
    for i in range(20):
        _run(env, svc.insert("t", make_entity("p", f"r{i}", f1=i)))
    hits, err = _run(
        env,
        svc.query_by_property("t", "p", lambda e: e.properties["f1"] % 2 == 0),
    )
    assert err is None
    assert len(hits) == 10


def test_property_scan_cost_grows_with_partition_size():
    env = Environment()
    svc = _svc(env)
    svc.create_table("t")
    for i in range(50):
        _run(env, svc.insert("t", make_entity("p", f"r{i}")))
    t0 = env.now
    _run(env, svc.query_by_property("t", "p", lambda e: False))
    small_cost = env.now - t0

    env2 = Environment()
    svc2 = _svc(env2)
    svc2.create_table("t")
    for i in range(5000):
        svc2._tables["t"][("p", f"r{i}")] = make_entity("p", f"r{i}")
    t0 = env2.now
    _run(env2, svc2.query_by_property("t", "p", lambda e: False))
    large_cost = env2.now - t0
    assert large_cost > small_cost * 5


def test_operations_on_missing_table_fail():
    env = Environment()
    svc = _svc(env)
    _, err = _run(env, svc.insert("ghost", make_entity("p", "r")))
    assert isinstance(err, EntityNotFoundError)


def test_partition_isolation():
    env = Environment()
    svc = _svc(env)
    svc.create_table("t")
    _run(env, svc.insert("t", make_entity("p1", "r")))
    _run(env, svc.insert("t", make_entity("p2", "r")))
    assert svc.entity_count("t", "p1") == 1
    assert svc.entity_count("t") == 2
    s1 = svc.server_for("t", "p1")
    s2 = svc.server_for("t", "p2")
    assert s1 is not s2
    assert svc.server_for("t", "p1") is s1


def test_entity_key_and_timestamp():
    env = Environment()
    svc = _svc(env)
    svc.create_table("t")
    e = make_entity("p", "r", size_kb=2.0)
    assert e.key == ("p", "r")
    _run(env, svc.insert("t", e))
    assert e.timestamp > 0
    assert e.size_kb == 2.0
