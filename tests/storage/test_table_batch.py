"""Tests for Entity Group Transactions (batch inserts)."""

import pytest

from repro.simcore import Environment, RandomStreams
from repro.storage import EntityAlreadyExistsError, TableService
from repro.storage.table import make_entity


def _svc(env, seed=0):
    svc = TableService(env, RandomStreams(seed).stream("table"))
    svc.create_table("t")
    return svc


def _run(env, gen):
    box = {}

    def proc(env):
        try:
            box["result"] = yield from gen
        except Exception as exc:  # noqa: BLE001 - test harness
            box["error"] = exc

    env.process(proc(env))
    env.run()
    return box.get("result"), box.get("error")


def test_batch_insert_atomic_success():
    env = Environment()
    svc = _svc(env)
    batch = [make_entity("p", f"r{i}") for i in range(10)]
    result, err = _run(env, svc.insert_batch("t", batch))
    assert err is None
    assert len(result) == 10
    assert svc.entity_count("t") == 10


def test_batch_insert_conflict_aborts_everything():
    env = Environment()
    svc = _svc(env)
    _run(env, svc.insert("t", make_entity("p", "r5")))
    batch = [make_entity("p", f"r{i}") for i in range(10)]
    _, err = _run(env, svc.insert_batch("t", batch))
    assert isinstance(err, EntityAlreadyExistsError)
    # Atomicity: nothing from the batch was written.
    assert svc.entity_count("t") == 1


def test_batch_validation():
    env = Environment()
    svc = _svc(env)
    with pytest.raises(ValueError):
        next(svc.insert_batch("t", []))
    with pytest.raises(ValueError):
        next(svc.insert_batch(
            "t", [make_entity("p", f"r{i}") for i in range(101)]
        ))
    with pytest.raises(ValueError):
        next(svc.insert_batch(
            "t", [make_entity("p1", "r"), make_entity("p2", "r")]
        ))
    with pytest.raises(ValueError):
        next(svc.insert_batch(
            "t", [make_entity("p", "r"), make_entity("p", "r")]
        ))


def test_batch_much_cheaper_than_singletons():
    env = Environment()
    svc = _svc(env)
    t0 = env.now
    _run(env, svc.insert_batch(
        "t", [make_entity("p", f"batch-{i}") for i in range(50)]
    ))
    batch_time = env.now - t0

    env2 = Environment()
    svc2 = _svc(env2, seed=1)

    def singles(env):
        for i in range(50):
            yield from svc2.insert("t", make_entity("p", f"one-{i}"))

    t0 = env2.now
    _run(env2, singles(env2))
    singles_time = env2.now - t0
    assert batch_time < singles_time / 5
