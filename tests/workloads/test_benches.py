"""Integration tests for the workload drivers at reduced scale."""

import pytest

from repro.workloads import (
    build_platform,
    run_blob_test,
    run_queue_test,
    run_table_test,
    run_tcp_test,
    run_vm_campaign,
)


def test_platform_builder_validation():
    with pytest.raises(ValueError):
        build_platform(n_clients=10_000, racks=2, hosts_per_rack=2)


def test_platform_deterministic_per_seed():
    a = build_platform(seed=5)
    b = build_platform(seed=5)
    assert a.streams.stream("x").random() == b.streams.stream("x").random()


def test_blob_bench_validation():
    with pytest.raises(ValueError):
        run_blob_test("sideways", 1)
    with pytest.raises(ValueError):
        run_blob_test("download", 0)


def test_blob_download_shape_small():
    one = run_blob_test("download", 1, size_mb=100.0, seed=1)
    many = run_blob_test("download", 32, size_mb=100.0, seed=2)
    assert one.mean_client_mbps == pytest.approx(13.0, rel=0.1)
    assert many.mean_client_mbps < one.mean_client_mbps * 0.65
    assert many.aggregate_mbps > one.aggregate_mbps * 10


def test_blob_upload_slower_than_download():
    down = run_blob_test("download", 4, size_mb=50.0, seed=3)
    up = run_blob_test("upload", 4, size_mb=50.0, seed=3)
    assert up.mean_client_mbps < down.mean_client_mbps * 0.7


def test_table_bench_runs_all_phases():
    ops = {"insert": 20, "query": 20, "update": 10, "delete": 20}
    result = run_table_test(4, entity_kb=1.0, ops_per_client=ops, seed=4)
    for phase, expected in ops.items():
        outcomes = result.phases[phase]
        assert len(outcomes) == 4
        assert all(o.ops_completed == expected for o in outcomes)
        assert result.mean_client_ops(phase) > 0
        assert result.failed_clients(phase) == 0


def test_table_bench_update_contention():
    ops = {"insert": 5, "query": 5, "update": 30, "delete": 5}
    solo = run_table_test(1, ops_per_client=ops, seed=5)
    crowd = run_table_test(32, ops_per_client=ops, seed=6)
    assert crowd.mean_client_ops("update") < solo.mean_client_ops("update") * 0.4


def test_table_bench_validation():
    with pytest.raises(ValueError):
        run_table_test(0)


def test_queue_bench_runs_each_operation():
    for op in ("add", "peek", "receive"):
        result = run_queue_test(op, 4, ops_per_client=15, seed=7)
        assert len(result.outcomes) == 4
        assert result.mean_client_ops > 5
        assert all(o.error is None for o in result.outcomes)


def test_queue_bench_validation():
    with pytest.raises(ValueError):
        run_queue_test("steal", 4)
    with pytest.raises(ValueError):
        run_queue_test("add", 0)


def test_vm_campaign_collects_requested_runs():
    campaign = run_vm_campaign(runs=30, seed=8)
    assert len(campaign.records) == 30
    assert campaign.total_attempts >= 30
    roles = {r.role for r in campaign.records}
    sizes = {r.size for r in campaign.records}
    assert roles == {"worker", "web"}
    assert len(sizes) >= 3


def test_vm_campaign_validation():
    with pytest.raises(ValueError):
        run_vm_campaign(runs=0)


def test_tcp_bench_collects_samples():
    result = run_tcp_test(
        latency_samples=200, bandwidth_samples=20, transfer_mb=500.0, seed=9
    )
    assert len(result.latency_s) >= 200
    assert len(result.bandwidth_mbps) >= 20
    assert result.total_pairs == 10
    assert all(0 < bw <= 126 for bw in result.bandwidth_mbps)
    assert all(0 < lat < 0.5 for lat in result.latency_s)


def test_tcp_bench_stable_across_heap_layouts():
    """Same seed must give bit-identical samples regardless of what the
    process allocated before (regression: a host set comprehension made
    background-traffic placement follow object addresses)."""
    first = run_tcp_test(
        latency_samples=8, bandwidth_samples=8, transfer_mb=200.0, seed=3
    )
    _perturb_heap = [object() for _ in range(50_000)]
    second = run_tcp_test(
        latency_samples=8, bandwidth_samples=8, transfer_mb=200.0, seed=3
    )
    assert first.latency_s == second.latency_s
    assert first.bandwidth_mbps == second.bandwidth_mbps
