"""Every bench on the unified harness emits per-request traces, and the
trace log is retrievable through the monitoring layer (the acceptance
contract for the single request-path runtime)."""

import pytest

from repro.monitoring import (
    MetricsRegistry,
    attach_request_tracer,
    ingest_request_traces,
    request_summary,
)
from repro.workloads.blob_bench import run_blob_test
from repro.workloads.harness import ClientRun, build_platform, sweep
from repro.workloads.queue_bench import run_queue_test
from repro.workloads.table_bench import run_table_test


def test_platform_carries_the_account_tracer():
    p = build_platform(seed=0, n_clients=1)
    assert p.tracer is p.account.tracer
    assert p.tracer.enabled


def test_blob_bench_emits_request_traces():
    p = build_platform(seed=0, n_clients=2)
    run_blob_test("download", 2, size_mb=64.0, platform=p)
    # Server-side records use the wire op kind ...
    downloads = p.tracer.of_op("blob.get")
    assert len(downloads) == 2
    assert all(t.ok and t.size_mb == 64.0 for t in downloads)
    assert all(t.transfer_s > 0 for t in downloads)
    # ... and the client-call records riding the same tracer use the
    # client API kind, carrying retry counts.
    assert p.tracer.client_total == 2
    assert {t.op for t in p.tracer.client_calls()} == {"blob.download"}


def test_table_bench_emits_request_traces_with_queue_waits():
    p = build_platform(seed=0, n_clients=4)
    ops = {"insert": 5, "query": 3, "update": 2, "delete": 5}
    run_table_test(4, entity_kb=4.0, ops_per_client=ops, platform=p)
    totals = p.tracer.per_op_totals()
    assert totals["table.insert"]["count"] == 20
    assert totals["table.query"]["count"] == 12
    assert totals["table.update"]["count"] == 8
    assert totals["table.delete"]["count"] == 20
    # Four clients hammering one partition must queue somewhere.
    waited = sum(t["queue_wait_s"] for t in totals.values())
    assert waited > 0


def test_queue_bench_emits_request_traces():
    p = build_platform(seed=0, n_clients=2)
    run_queue_test("receive", 2, ops_per_client=5, platform=p)
    totals = p.tracer.per_op_totals()
    assert totals["queue.receive"]["count"] == 10
    assert totals["queue.receive"]["errors"] == 0


def test_traces_flow_into_monitoring():
    p = build_platform(seed=0, n_clients=2)
    run_queue_test("add", 2, ops_per_client=4, platform=p)

    registry = MetricsRegistry()
    attach_request_tracer(registry, p.tracer)
    snapshot = registry.snapshot()
    assert snapshot["gauge:requests.total"] == p.tracer.total > 0
    assert snapshot["gauge:requests.errors"] == 0
    assert snapshot["gauge:requests.client_total"] == 8

    ingested = ingest_request_traces(registry, p.tracer)
    assert ingested == p.tracer.total
    assert "latency_p50:requests.queue.add" in registry.snapshot()

    summary = request_summary(p.tracer)
    assert "queue.add" in summary
    assert "mean_latency_s" in summary


def test_sweep_merges_results_in_level_order():
    levels = [1, 2]
    out = sweep(
        run_queue_test,
        [("add", n, 0.5, 2, None, n) for n in levels],
        levels,
    )
    assert sorted(out) == levels
    assert all(out[n].n_clients == n for n in levels)


def test_client_run_rates():
    run = ClientRun(client=0, ops_completed=10, elapsed_s=2.0)
    assert run.ops_per_s == pytest.approx(5.0)
    assert run.finished
    failed = ClientRun(0, 3, 1.0, error="ServerBusyError")
    assert not failed.finished
    zero = ClientRun(0, 0, 0.0)
    assert zero.ops_per_s == 0.0
