"""Cohort layer: exact-mode equivalence, fluid-mode statistical parity.

The cohort layer's whole claim is that a batched population is a
faithful stand-in for per-client simulation.  These tests pin it from
three sides: the exact driver is *bitwise* the per-client path (same
platform, same streams, same outcome rows as a hand-written
``run_clients`` driver); the batched driver matches the exact one
*statistically* at small N (op counts exactly, latency summaries within
the fluid model's tolerance); and both modes are deterministic per seed.
"""

import pytest

from repro.simcore import Distribution, RandomStreams
from repro.workloads.cohort import (
    EXACT_MAX_CLIENTS,
    CohortSpec,
    run_cohort,
    sweep_cohort,
)
from repro.workloads.harness import build_platform, measured_loop, run_clients

THINK = Distribution.exponential(0.05)


def _spec(**overrides):
    base = dict(
        service="table",
        op="insert",
        n_clients=12,
        ops_per_client=4,
        think_time=THINK,
    )
    base.update(overrides)
    return CohortSpec(**base)


# -- spec validation -------------------------------------------------------


def test_spec_rejects_unknown_op():
    with pytest.raises(ValueError):
        CohortSpec(service="table", op="fly", n_clients=1)
    with pytest.raises(ValueError):
        CohortSpec(service="disk", op="insert", n_clients=1)


def test_spec_rejects_bad_sizes():
    with pytest.raises(ValueError):
        _spec(n_clients=0)
    with pytest.raises(ValueError):
        _spec(ops_per_client=0)
    with pytest.raises(ValueError):
        _spec(ramp_s=-1.0)
    with pytest.raises(ValueError):
        _spec(batch_window_s=0.0)


def test_run_cohort_rejects_unknown_mode():
    with pytest.raises(ValueError):
        run_cohort(_spec(), mode="fluid-ish")


# -- auto mode switch ------------------------------------------------------


def test_auto_mode_is_exact_at_small_n():
    result = run_cohort(_spec(n_clients=EXACT_MAX_CLIENTS), seed=1)
    assert result.mode == "exact"


def test_auto_mode_is_batched_beyond_threshold():
    result = run_cohort(
        _spec(n_clients=EXACT_MAX_CLIENTS + 1, ops_per_client=2), seed=1
    )
    assert result.mode == "batched"


# -- exact mode == the per-client path, bitwise ----------------------------


def test_exact_mode_matches_handwritten_driver_bitwise():
    """An exact-mode cohort IS run_clients + measured_loop: same
    platform construction, same client stack, same RNG streams — so
    every outcome row and the tracer aggregates agree exactly."""
    from repro.client import TableClient
    from repro.resilience.backoff import NO_RETRY
    from repro.storage.table import make_entity

    spec = _spec(n_clients=8, ops_per_client=3)
    cohort = run_cohort(spec, seed=11, mode="exact")

    # The hand-written equivalent of the cohort's exact driver.
    platform = build_platform(seed=11, n_clients=1)
    platform.account.tables.create_table("cohort")
    env = platform.env
    think_rng = platform.streams.stream("cohort.think")
    outcomes = []

    def member(env, idx):
        client = TableClient(
            platform.account.tables, timeout_s=30.0, retry=NO_RETRY
        )

        def one_op(op_i):
            yield from client.insert(
                "cohort",
                make_entity(
                    "cohort-pk", f"c{idx}-r{op_i}", size_kb=spec.size_kb
                ),
            )
            yield env.timeout(THINK.sample(think_rng))

        yield from measured_loop(env, idx, spec.ops_per_client, one_op, outcomes)

    run_clients(platform, spec.n_clients, member)

    assert len(cohort.outcomes) == len(outcomes)
    for got, want in zip(cohort.outcomes, outcomes):
        assert got.client == want.client
        assert got.ops_completed == want.ops_completed
        assert got.elapsed_s == want.elapsed_s  # bitwise
        assert got.error == want.error
    assert cohort.ops_completed == sum(o.ops_completed for o in outcomes)


def test_exact_mode_is_deterministic():
    a = run_cohort(_spec(), seed=5, mode="exact")
    b = run_cohort(_spec(), seed=5, mode="exact")
    assert a.summary() == b.summary()
    c = run_cohort(_spec(), seed=6, mode="exact")
    assert a.makespan_s != c.makespan_s


@pytest.mark.parametrize(
    "service,op",
    [
        ("table", "insert"),
        ("table", "query"),
        ("table", "update"),
        ("table", "delete"),
        ("queue", "add"),
        ("queue", "peek"),
        ("queue", "receive"),
        ("blob", "upload"),
        ("blob", "download"),
    ],
)
def test_every_supported_op_runs_clean_in_exact_mode(service, op):
    """Seeding pre-creates whatever state each op needs (shared rows,
    queue backlog, download blob), so a small cohort completes without
    a single error on any supported op."""
    spec = _spec(
        service=service, op=op, n_clients=4, ops_per_client=3, size_mb=0.25
    )
    result = run_cohort(spec, seed=2, mode="exact")
    assert result.ops_completed == 4 * 3
    assert result.errors == 0
    assert result.failed_clients == 0
    assert result.latency_mean_s > 0
    assert result.makespan_s > 0


# -- batched mode: statistical parity with exact ---------------------------


def test_batched_matches_exact_op_counts_exactly():
    spec = _spec(n_clients=16, ops_per_client=5)
    exact = run_cohort(spec, seed=3, mode="exact")
    batched = run_cohort(spec, seed=3, mode="batched")
    assert batched.ops_completed == exact.ops_completed == 16 * 5
    assert batched.errors == exact.errors == 0


@pytest.mark.parametrize(
    "service,op",
    [("table", "insert"), ("queue", "add"), ("blob", "download")],
)
def test_batched_latency_statistically_matches_exact(service, op):
    """The fluid model and the event-level path share one calibration,
    so mean and median latency agree within the fluid approximation's
    envelope (the front-end term uses fixed-point concurrency where the
    exact path sees instantaneous concurrency)."""
    spec = _spec(
        service=service,
        op=op,
        n_clients=16,
        ops_per_client=5,
        size_mb=0.5,
    )
    exact = run_cohort(spec, seed=3, mode="exact")
    batched = run_cohort(spec, seed=3, mode="batched")
    for field in ("latency_mean_s", "latency_p50_s"):
        e, b = getattr(exact, field), getattr(batched, field)
        assert e > 0 and b > 0
        assert 0.5 < b / e < 2.0, f"{field}: exact={e:.4f} batched={b:.4f}"
    # Makespans are max-of-sums over the same think/latency means.
    assert 0.3 < batched.makespan_s / exact.makespan_s < 3.0


def test_batched_mode_is_deterministic():
    spec = _spec(n_clients=500, ops_per_client=3)
    a = run_cohort(spec, seed=9, mode="batched")
    b = run_cohort(spec, seed=9, mode="batched")
    assert a.summary() == b.summary()


def test_batched_scales_to_tens_of_thousands():
    """10^4 clients through one kernel process: every op accounted for,
    aggregate throughput and latency populated, sharded scheduler
    engaged at this population."""
    spec = _spec(n_clients=10_000, ops_per_client=3)
    result = run_cohort(spec, seed=4, mode="batched")
    # A failed member forfeits its remaining ops, so requests issued
    # never exceed the population's budget.
    assert 0 < result.ops_completed + result.errors <= 10_000 * 3
    assert result.aggregate_ops_per_s > 0
    assert result.latency_p99_s >= result.latency_p50_s > 0


def test_batched_sheds_under_overload():
    """A zero-think, large-payload insert cohort pushes the partition
    past the overload knee: the fluid model must shed (errors > 0),
    matching the event-level server's admission behavior."""
    spec = CohortSpec(
        service="table",
        op="insert",
        n_clients=50_000,
        ops_per_client=3,
        think_time=None,
        size_kb=64.0,
    )
    result = run_cohort(spec, seed=8, mode="batched")
    assert result.errors > 0
    assert result.failed_clients == result.errors
    assert result.ops_completed + result.errors <= 50_000 * 3


def test_batched_respects_client_timeout():
    """Latencies are capped at the client timeout and the affected
    members abort, mirroring race_timeout's ceiling."""
    spec = CohortSpec(
        service="blob",
        op="upload",
        n_clients=20_000,
        ops_per_client=2,
        think_time=None,
        size_mb=50.0,
        timeout_s=5.0,
    )
    result = run_cohort(spec, seed=8, mode="batched")
    assert result.latency_p99_s <= 5.0 + 1e-9
    assert result.errors > 0


# -- the shared summary shape ----------------------------------------------


def test_summary_has_the_figure_shape_in_both_modes():
    keys = {
        "n_clients",
        "ops_completed",
        "errors",
        "failed_clients",
        "makespan_s",
        "aggregate_ops_per_s",
        "mean_client_ops_per_s",
        "latency_mean_s",
        "latency_p50_s",
        "latency_p99_s",
    }
    spec = _spec(n_clients=6, ops_per_client=2)
    for mode in ("exact", "batched"):
        summary = run_cohort(spec, seed=1, mode=mode).summary()
        assert set(summary) == keys
        assert summary["n_clients"] == 6.0


def test_sweep_cohort_covers_every_level():
    spec = _spec(n_clients=1, ops_per_client=2)
    results = sweep_cohort(spec, levels=[2, 4, 40], seed=1)
    assert sorted(results) == [2, 4, 40]
    assert results[2].mode == "exact"
    assert results[4].mode == "exact"
    assert results[40].mode == "batched"
    for level, result in results.items():
        assert result.spec.n_clients == level


def test_batched_can_share_a_caller_tracer():
    from repro.service.tracing import RequestTracer

    tracer = RequestTracer()
    spec = _spec(n_clients=100, ops_per_client=2)
    run_cohort(spec, seed=1, mode="batched", tracer=tracer)
    assert tracer.client_total == 200
    # Aggregate-only ingestion: no raw records under cohort traffic.
    assert tracer.records() == []
    assert tracer.client_calls() == []
