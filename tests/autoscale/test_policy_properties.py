"""Property-based tests on scaling-policy decision logic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autoscale import FixedFleet, HotStandby, ReactivePolicy, SchedulePolicy
from repro.autoscale.policies import FleetView

views = st.builds(
    FleetView,
    time_s=st.floats(min_value=0, max_value=1e6),
    ready=st.integers(min_value=0, max_value=500),
    starting=st.integers(min_value=0, max_value=100),
    backlog=st.integers(min_value=0, max_value=10_000),
    completed_recent=st.integers(min_value=0, max_value=10_000),
)


@given(view=views, count=st.integers(min_value=1, max_value=100))
@settings(max_examples=100, deadline=None)
def test_property_fixed_always_its_count(view, count):
    assert FixedFleet(count).desired_count(view) == count


@given(
    view=views,
    base=st.integers(min_value=1, max_value=50),
    standbys=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=100, deadline=None)
def test_property_hot_standby_never_below_base_plus_margin(view, base, standbys):
    desired = HotStandby(base, standbys).desired_count(view)
    assert desired >= base + standbys
    # Monotone in backlog.
    more = FleetView(
        view.time_s, view.ready, view.starting,
        view.backlog + 100, view.completed_recent,
    )
    assert HotStandby(base, standbys).desired_count(more) >= desired


@given(view=views, base=st.integers(min_value=1, max_value=20))
@settings(max_examples=100, deadline=None)
def test_property_reactive_bounded(view, base):
    policy = ReactivePolicy(base=base, max_count=base + 40)
    desired = policy.desired_count(view)
    assert base <= desired <= base + 40


@given(
    view=views,
    steps=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e6),
            st.integers(min_value=1, max_value=100),
        ),
        min_size=1, max_size=8,
    ),
)
@settings(max_examples=100, deadline=None)
def test_property_schedule_picks_latest_breakpoint(view, steps):
    policy = SchedulePolicy(steps)
    desired = policy.desired_count(view)
    ordered = sorted(steps)
    expected = ordered[0][1]
    for start, count in ordered:
        if view.time_s >= start:
            expected = count
    assert desired == expected
    assert desired >= 1
