"""Unit + integration tests for the autoscaling package."""

import math

import pytest

from repro.autoscale import (
    FixedFleet,
    HotStandby,
    LoadProfile,
    ReactivePolicy,
    ScalingSimulator,
    SchedulePolicy,
)
from repro.autoscale.policies import FleetView
from repro.autoscale.simulator import compare_policies


def _view(**kw):
    defaults = dict(time_s=0.0, ready=4, starting=0, backlog=0,
                    completed_recent=0)
    defaults.update(kw)
    return FleetView(**defaults)


# -- policy decision logic ----------------------------------------------------

def test_fixed_fleet_constant():
    policy = FixedFleet(6)
    assert policy.desired_count(_view(backlog=1000)) == 6
    assert policy.desired_count(_view(backlog=0)) == 6
    assert "6" in policy.name


def test_fixed_fleet_validation():
    with pytest.raises(ValueError):
        FixedFleet(0)


def test_hot_standby_keeps_margin():
    policy = HotStandby(base=4, standbys=3)
    assert policy.desired_count(_view(backlog=0)) == 7
    # Demand grows with backlog, margin stays on top.
    assert policy.desired_count(_view(backlog=40)) == 13


def test_hot_standby_validation():
    with pytest.raises(ValueError):
        HotStandby(base=0, standbys=1)
    with pytest.raises(ValueError):
        HotStandby(base=2, standbys=-1)


def test_reactive_scales_out_on_backlog():
    policy = ReactivePolicy(base=4, scale_out_backlog=8.0, step=4)
    assert policy.desired_count(_view(ready=4, backlog=40)) == 8
    assert policy.desired_count(_view(ready=4, backlog=0)) == 4


def test_reactive_scales_in_when_idle():
    policy = ReactivePolicy(base=2, scale_in_backlog=1.0)
    assert policy.desired_count(_view(ready=6, backlog=0)) == 5


def test_reactive_respects_max():
    policy = ReactivePolicy(base=4, step=100, max_count=10)
    assert policy.desired_count(_view(ready=4, backlog=10_000)) == 10


def test_reactive_validation():
    with pytest.raises(ValueError):
        ReactivePolicy(base=0)
    with pytest.raises(ValueError):
        ReactivePolicy(base=4, max_count=2)


def test_schedule_policy_steps():
    policy = SchedulePolicy([(0.0, 2), (3600.0, 10), (7200.0, 4)])
    assert policy.desired_count(_view(time_s=0.0)) == 2
    assert policy.desired_count(_view(time_s=3600.0)) == 10
    assert policy.desired_count(_view(time_s=9999.0)) == 4


def test_schedule_validation():
    with pytest.raises(ValueError):
        SchedulePolicy([])
    with pytest.raises(ValueError):
        SchedulePolicy([(0.0, 0)])


# -- load profile ------------------------------------------------------------

def test_load_profile_bursty_shape():
    profile = LoadProfile.bursty(cycles=2)
    assert len(profile.phases) == 4
    assert profile.horizon_s == pytest.approx(4 * 3600.0)


def test_load_profile_validation():
    with pytest.raises(ValueError):
        LoadProfile(phases=())
    with pytest.raises(ValueError):
        LoadProfile(phases=((0.0, 5.0),))
    with pytest.raises(ValueError):
        LoadProfile(phases=((100.0, -1.0),))


# -- simulator ----------------------------------------------------------------

def test_simulator_completes_jobs():
    profile = LoadProfile.bursty(cycles=1, burst_rate=120.0)
    outcome = ScalingSimulator(FixedFleet(8), profile, seed=1,
                               initial_count=8).run()
    assert outcome.jobs_completed > 50
    assert outcome.instance_hours > 0
    assert outcome.peak_instances >= 8
    assert not math.isnan(outcome.mean_wait_s)


def test_hot_standby_cuts_burst_latency_vs_fixed():
    profile = LoadProfile.bursty(cycles=2, burst_rate=200.0, quiet_rate=5.0)
    fixed, standby = compare_policies(
        [FixedFleet(4), HotStandby(base=4, standbys=10)],
        profile, seed=2, initial_count=4,
    )
    assert standby.p95_wait_s < fixed.p95_wait_s * 0.6
    assert standby.instance_hours > fixed.instance_hours


def test_reactive_pays_the_ten_minute_penalty():
    """Reactive scaling helps eventually but burst jobs wait ~add-time."""
    profile = LoadProfile.bursty(cycles=1, burst_rate=300.0, quiet_rate=2.0)
    reactive = ScalingSimulator(
        ReactivePolicy(base=4, step=8), profile, seed=3, initial_count=4
    ).run()
    fixed = ScalingSimulator(
        FixedFleet(4), profile, seed=3, initial_count=4
    ).run()
    # It scaled...
    assert reactive.peak_instances > 4
    assert reactive.scale_actions >= 1
    # ...and beat the non-scaling fleet on tail latency...
    assert reactive.p95_wait_s < fixed.p95_wait_s
    # ...but burst arrivals still saw multi-minute waits (the Table 1
    # add latency is unavoidable).
    assert reactive.p95_wait_s > 300.0


def test_simulator_determinism():
    profile = LoadProfile.bursty(cycles=1)
    a = ScalingSimulator(FixedFleet(4), profile, seed=7).run()
    b = ScalingSimulator(FixedFleet(4), profile, seed=7).run()
    assert a.jobs_completed == b.jobs_completed
    assert a.mean_wait_s == b.mean_wait_s
    assert a.instance_hours == b.instance_hours


def test_simulator_validation():
    with pytest.raises(ValueError):
        ScalingSimulator(FixedFleet(2), LoadProfile.bursty(), initial_count=0)


def test_outcome_summary_row():
    profile = LoadProfile.bursty(cycles=1)
    outcome = ScalingSimulator(FixedFleet(4), profile, seed=1).run()
    row = outcome.summary_row()
    assert row[0] == "fixed(4)"
    assert len(row) == 6
