"""End-to-end experiment tests at reduced scale.

Each experiment must run, render, and pass its own paper-shape checks.
These are the tightest integration tests in the suite: they exercise the
kernel, network, storage, cluster, clients, workloads and analysis
layers together.
"""

import pytest

from repro.experiments import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.registry import run_all


def test_registry_contains_every_paper_artifact():
    assert set(EXPERIMENTS) == {
        "fig1", "fig2", "fig3", "fig4", "fig5", "table1", "table2", "fig7",
    }
    for spec in EXPERIMENTS.values():
        assert spec.title and spec.paper_artifact


def test_get_experiment_unknown_raises():
    with pytest.raises(ValueError):
        get_experiment("fig99")
    with pytest.raises(ValueError):
        run_experiment("fig1", scale=0.0)


@pytest.mark.parametrize("experiment_id,scale", [
    ("fig1", 0.1),
    ("table1", 0.25),
    ("fig4", 0.1),
])
def test_fast_experiments_pass_shape_checks(experiment_id, scale):
    report = run_experiment(experiment_id, scale=scale, seed=3)
    assert report.experiment_id == experiment_id
    rendered = report.render()
    assert report.title in rendered
    assert "Shape checks" in rendered
    assert report.passed, "\n" + report.checks.render()


@pytest.mark.slow
def test_fig3_queue_experiment():
    report = run_experiment("fig3", scale=0.4, seed=3)
    assert report.passed, "\n" + report.checks.render()


@pytest.mark.slow
def test_fig2_table_experiment():
    report = run_experiment("fig2", scale=0.12, seed=3)
    assert report.passed, "\n" + report.checks.render()


@pytest.mark.slow
def test_fig5_bandwidth_experiment():
    report = run_experiment("fig5", scale=0.25, seed=3)
    assert report.passed, "\n" + report.checks.render()


@pytest.mark.slow
def test_table2_modis_experiment():
    report = run_experiment("table2", scale=0.12, seed=3)
    assert report.passed, "\n" + report.checks.render()


@pytest.mark.slow
def test_fig7_timeout_experiment():
    report = run_experiment("fig7", scale=0.15, seed=5)
    assert report.passed, "\n" + report.checks.render()


def test_reports_carry_machine_readable_data():
    report = run_experiment("fig1", scale=0.05, seed=1)
    assert "download" in report.data and "upload" in report.data
    assert set(report.data["download"]) == {1, 2, 4, 8, 16, 32, 64, 128, 192}


def test_run_all_signature():
    # run_all exists and is importable; actually running everything is
    # the CLI's job (covered piecewise above).
    assert callable(run_all)
