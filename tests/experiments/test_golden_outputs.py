"""Byte-for-byte pinning of experiment outputs.

The committed digests were recorded *before* the incremental fair-share
engine landed; these tests prove the new engine reproduces the batch
engine's outputs exactly — same rates, same completion order, same RNG
trajectory — down to the last float bit.  Any intentional output change
must regenerate the file via ``tools/record_goldens.py`` and say so in
the commit.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.golden import (
    GOLDEN_SCALE,
    GOLDEN_SEED,
    collect_digests,
)

_GOLDEN_FILE = Path(__file__).parent / "golden_digests.json"
_GOLDEN = json.loads(_GOLDEN_FILE.read_text())


def test_golden_file_matches_pinned_scale_seed():
    assert _GOLDEN["scale"] == GOLDEN_SCALE
    assert _GOLDEN["seed"] == GOLDEN_SEED


@pytest.mark.parametrize("experiment_id", sorted(_GOLDEN["digests"]))
def test_experiment_output_bit_identical(experiment_id):
    digest = collect_digests([experiment_id])[experiment_id]
    assert digest == _GOLDEN["digests"][experiment_id], (
        f"{experiment_id} output diverged from the pre-incremental-"
        f"engine golden digest (scale={GOLDEN_SCALE}, seed={GOLDEN_SEED})"
    )
