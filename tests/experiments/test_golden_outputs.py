"""Byte-for-byte pinning of experiment outputs.

The committed digests were recorded *before* the incremental fair-share
engine landed; these tests prove later engines — including the unified
``repro.service`` request pipeline — reproduce the original outputs
exactly: same rates, same completion order, same RNG trajectory, down
to the last float bit.  Any intentional output change must regenerate
the file via ``tools/record_goldens.py`` and say so in the commit.

``check_digests`` is the same verifier ``tools/record_goldens.py
--check`` runs in CI.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.golden import (
    GOLDEN_SCALE,
    GOLDEN_SEED,
    check_digests,
)

_GOLDEN_FILE = Path(__file__).parent / "golden_digests.json"
_GOLDEN = json.loads(_GOLDEN_FILE.read_text())


def test_golden_file_matches_pinned_scale_seed():
    assert _GOLDEN["scale"] == GOLDEN_SCALE
    assert _GOLDEN["seed"] == GOLDEN_SEED


def test_check_digests_rejects_unknown_experiment():
    with pytest.raises(KeyError):
        check_digests(_GOLDEN_FILE, ["no-such-experiment"])


@pytest.mark.parametrize("experiment_id", sorted(_GOLDEN["digests"]))
def test_experiment_output_bit_identical(experiment_id):
    mismatches = check_digests(_GOLDEN_FILE, [experiment_id])
    assert not mismatches, (
        f"{experiment_id} output diverged from the golden digest "
        f"(scale={GOLDEN_SCALE}, seed={GOLDEN_SEED}): {mismatches}"
    )
