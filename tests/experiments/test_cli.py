"""CLI tests."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for eid in ("fig1", "fig2", "table1", "table2", "fig7"):
        assert eid in out


def test_calibration_command(capsys):
    assert main(["calibration"]) == 0
    out = capsys.readouterr().out
    assert "[network]" in out and "replication_factor" in out


def test_run_command_executes_experiment(capsys):
    code = main(["run", "fig1", "--scale", "0.05", "--seed", "2"])
    out = capsys.readouterr().out
    assert "fig1" in out and "Shape checks" in out
    assert code == 0


def test_run_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_command_json_export(tmp_path, capsys):
    out = tmp_path / "results.json"
    code = main([
        "run", "fig1", "--scale", "0.05", "--seed", "2",
        "--json", str(out),
    ])
    assert code == 0
    import json

    data = json.loads(out.read_text())
    assert "fig1" in data
    assert data["fig1"]["passed"] is True
    assert any(c["name"].startswith("single client") for c in
               data["fig1"]["checks"])
    assert "download" in data["fig1"]["data"]
