"""Integration tests for the typed service clients."""

import pytest

from repro.client import BlobClient, ManagementClient, QueueClient, TableClient
from repro.client.tcp import TcpEndpointPair
from repro.cluster import FabricController, PackPlacement, VMInstance, make_nodes
from repro.cluster.sizes import get_size
from repro.network import Datacenter, FlowNetwork, LatencyModel
from repro.simcore import Environment, RandomStreams
from repro.storage import StorageAccount
from repro.storage.errors import EntityNotFoundError
from repro.storage.table import make_entity


def _run(env, gen):
    box = {}

    def proc(env):
        try:
            box["result"] = yield from gen
        except Exception as exc:  # noqa: BLE001 - test harness
            box["error"] = exc

    env.process(proc(env))
    env.run()
    return box.get("result"), box.get("error")


def _account(seed=0):
    env = Environment()
    account = StorageAccount(env, RandomStreams(seed))
    return env, account


def test_table_client_roundtrip():
    env, account = _account()
    account.tables.create_table("t")
    client = TableClient(account.tables)
    _, err = _run(env, client.insert("t", make_entity("p", "r", f1=7)))
    assert err is None
    found, err = _run(env, client.query("t", "p", "r"))
    assert err is None and found.properties["f1"] == 7
    _, err = _run(env, client.delete("t", "p", "r"))
    assert err is None
    _, err = _run(env, client.query("t", "p", "r"))
    assert isinstance(err, EntityNotFoundError)


def test_table_client_measured_outcome():
    env, account = _account()
    account.tables.create_table("t")
    client = TableClient(account.tables)
    pair, err = _run(env, client.insert_measured("t", make_entity("p", "r")))
    assert err is None
    entity, outcome = pair
    assert outcome.ok and outcome.latency_s > 0
    pair, _ = _run(env, client.query_measured("t", "p", "ghost"))
    _none, outcome = pair
    assert not outcome.ok


def test_queue_client_roundtrip():
    env, account = _account()
    account.queues.create_queue("q")
    client = QueueClient(account.queues)

    def scenario(env):
        yield from client.add("q", "hello")
        msg = yield from client.receive("q")
        yield from client.delete("q", msg, msg.pop_receipt)
        return msg.payload

    payload, err = _run(env, scenario(env))
    assert err is None and payload == "hello"
    assert account.queues.queue_length("q") == 0


def test_blob_client_roundtrip():
    env, account = _account()
    account.blobs.create_container("c")
    dc = Datacenter(racks=1, hosts_per_rack=2)

    class _EP:
        def __init__(self, host):
            self.nic_tx, self.nic_rx = host.nic_tx, host.nic_rx

    client = BlobClient(account.blobs, _EP(dc.hosts[0]))
    meta, err = _run(env, client.upload("c", "b", 5.0))
    assert err is None and client.exists("c", "b")
    got, err = _run(env, client.download("c", "b"))
    assert err is None and got.content_token == meta.content_token
    pair, _ = _run(env, client.download_measured("c", "b"))
    _meta, outcome = pair
    assert outcome.ok and outcome.latency_s > 0


def test_management_client_full_cycle():
    env = Environment()
    fabric = FabricController(
        env, RandomStreams(0).stream("fabric"), inject_failures=False
    )
    mgmt = ManagementClient(fabric)
    record, err = _run(env, mgmt.timed_lifecycle("worker", "small", 4))
    assert err is None
    assert not record.failed
    assert set(record.phase_s) == {"create", "run", "add", "suspend", "delete"}
    assert len(record.run_instance_ready_s) == 4
    assert record.phase_s["run"] > 300


def test_management_client_skips_add_for_extralarge():
    env = Environment()
    fabric = FabricController(
        env, RandomStreams(1).stream("fabric"), inject_failures=False
    )
    mgmt = ManagementClient(fabric)
    record, err = _run(env, mgmt.timed_lifecycle("worker", "extralarge", 1))
    assert err is None
    assert not record.add_supported
    assert "add" not in record.phase_s


def test_tcp_pair_ping_and_send():
    env = Environment()
    streams = RandomStreams(3)
    net = FlowNetwork(env)
    dc = Datacenter(racks=2, hosts_per_rack=2)
    nodes = make_nodes(dc)
    placement = PackPlacement(nodes)
    a = VMInstance("worker", get_size("small"), 0)
    b = VMInstance("worker", get_size("small"), 0)
    placement.place(a)
    # Force b onto a different host for a real network path.
    nodes[1].attach(b)
    pair = TcpEndpointPair(net, dc, LatencyModel(streams.stream("lat")), a, b)

    def scenario(env):
        rtt = yield from pair.ping()
        mbps = yield from pair.send(100.0)
        return rtt, mbps

    (rtt, mbps), err = _run(env, scenario(env))
    assert err is None
    assert 0 < rtt < 0.05
    assert 50 < mbps <= 125.5  # same rack, idle network: near GigE


def test_tcp_pair_requires_placement():
    env = Environment()
    net = FlowNetwork(env)
    dc = Datacenter(racks=1, hosts_per_rack=2)
    lat = LatencyModel(RandomStreams(0).stream("lat"))
    a = VMInstance("worker", get_size("small"), 0)
    b = VMInstance("worker", get_size("small"), 0)
    with pytest.raises(ValueError):
        TcpEndpointPair(net, dc, lat, a, b)


def test_tcp_send_validation():
    env = Environment()
    net = FlowNetwork(env)
    dc = Datacenter(racks=1, hosts_per_rack=2)
    nodes = make_nodes(dc)
    a = VMInstance("worker", get_size("small"), 0)
    b = VMInstance("worker", get_size("small"), 0)
    nodes[0].attach(a)
    nodes[1].attach(b)
    pair = TcpEndpointPair(
        net, dc, LatencyModel(RandomStreams(0).stream("lat")), a, b
    )
    with pytest.raises(ValueError):
        next(pair.send(0.0))


def test_queue_client_receive_batch():
    env, account = _account(seed=4)
    account.queues.create_queue("q")
    client = QueueClient(account.queues)

    def scenario(env):
        for i in range(6):
            yield from client.add("q", i)
        batch = yield from client.receive_batch("q", max_messages=4)
        for msg in batch:
            yield from client.delete("q", msg, msg.pop_receipt)
        return [m.payload for m in batch]

    payloads, err = _run(env, scenario(env))
    assert err is None
    assert payloads == [0, 1, 2, 3]
    assert account.queues.queue_length("q") == 2
