"""Tests for replica-aware client routing: failover, hedging, spans."""

from repro.client import TableClient
from repro.client.service_client import FailoverPolicy
from repro.faults import FaultInjector
from repro.observability import spans as spanlib
from repro.observability.spans import SpanTracer
from repro.resilience.backoff import NO_RETRY
from repro.resilience.hedging import HedgePolicy
from repro.simcore import Environment, RandomStreams
from repro.storage import (
    AccountFailoverError,
    GeoReplicatedAccount,
    ReplicationConfig,
    StorageAccount,
)
from repro.storage.errors import ConnectionFailureError, is_transport_failure
from repro.storage.table import make_entity


def _geo(seed=0, spans=False, **cfg):
    env = Environment()
    streams = RandomStreams(seed)
    geo = GeoReplicatedAccount(
        env, streams, name="geo",
        replication=ReplicationConfig(**cfg) if cfg else None,
    )
    if spans:
        geo.tracer.spans = SpanTracer()
    for replica in (geo.primary, geo.secondary):
        replica.tables.create_table("t")
        replica.tables.seed_entity("t", make_entity("hot", "hot"))
    return env, geo


def _fault_primary(env, geo, kind="blackout", magnitude=0.0):
    """Open a long fault window on the primary's hot partition server."""
    server = geo.primary.tables.server_for("t", "hot")
    injector = FaultInjector(env, RandomStreams(99).stream("faults"))
    injector.attach(server)
    injector.add_window(0.0, 10_000.0, kind, magnitude)
    return injector


def _run(env, gen):
    box = {}

    def runner(env):
        box["result"] = yield from gen

    env.process(runner(env))
    env.run()
    return box.get("result")


def test_read_fails_over_to_secondary_when_primary_blacks_out():
    env, geo = _geo()
    _fault_primary(env, geo)
    client = geo.table_client(retry=NO_RETRY)
    entity = _run(env, client.query("t", "hot", "hot"))
    assert entity.key == ("hot", "hot")
    assert client.failovers == 1


def test_failover_span_waterfall_shows_replica_legs():
    env, geo = _geo(spans=True)
    _fault_primary(env, geo)
    client = geo.table_client(retry=NO_RETRY)
    _run(env, client.query("t", "hot", "hot"))

    recorded = geo.tracer.spans.spans()
    calls = [s for s in recorded if s.name == "call:table.query"]
    assert len(calls) == 1
    call = calls[0]
    assert call.kind == spanlib.CLIENT
    assert call.ok
    # The call-level span records which replica ultimately served it.
    assert call.attributes["replica"] == "secondary"

    attempts = [
        s for s in recorded
        if s.kind == spanlib.ATTEMPT and s.parent_id == call.span_id
    ]
    assert [a.attributes["replica"] for a in attempts] == [
        "primary", "secondary",
    ]
    assert attempts[0].status == "ConnectionFailureError"
    assert attempts[1].ok
    # The waterfall is causally ordered: the failover leg starts only
    # after the primary leg has failed.
    assert attempts[1].start_s >= attempts[0].end_s


def test_client_without_secondary_emits_no_replica_attributes():
    """Seed behaviour: single-replica clients trace exactly as before."""
    env = Environment()
    account = StorageAccount(env, RandomStreams(0), name="acct")
    account.tracer.spans = SpanTracer()
    account.tables.create_table("t")
    account.tables.seed_entity("t", make_entity("hot", "hot"))
    client = TableClient(account.tables)
    entity = _run(env, client.query("t", "hot", "hot"))
    assert entity.key == ("hot", "hot")
    recorded = account.tracer.spans.spans()
    assert recorded  # the call + attempt (+ server) spans were emitted
    assert all("replica" not in s.attributes for s in recorded)


def test_failover_disabled_by_policy_surfaces_the_error():
    env, geo = _geo()
    _fault_primary(env, geo)
    client = geo.table_client(
        retry=NO_RETRY, failover=FailoverPolicy(enabled=False)
    )
    caught = {}

    def scenario(env):
        try:
            yield from client.query("t", "hot", "hot")
        except ConnectionFailureError as exc:
            caught["error"] = exc

    env.process(scenario(env))
    env.run()
    assert isinstance(caught["error"], ConnectionFailureError)
    assert client.failovers == 0


def test_writes_never_fail_over_to_the_demoted_secondary():
    """The failover pass runs for writes too, but the account's write
    guard rejects the demoted replica -- retryably, so the client can
    ride out the promotion instead of forking history."""
    env, geo = _geo()
    _fault_primary(env, geo)
    client = geo.table_client(retry=NO_RETRY)
    caught = {}

    def scenario(env):
        try:
            yield from client.insert("t", make_entity("hot", "k2"))
        except AccountFailoverError as exc:
            caught["error"] = exc

    env.process(scenario(env))
    env.run()
    assert isinstance(caught["error"], AccountFailoverError)
    assert is_transport_failure(caught["error"])  # i.e. retryable
    assert client.failovers == 0  # the guard rejected the second leg


def test_route_hint_sends_calls_straight_to_secondary_after_failover():
    env, geo = _geo(promotion_s=0.0)
    _fault_primary(env, geo)
    client = geo.table_client(retry=NO_RETRY)
    seen = {}

    def scenario(env):
        yield from geo.failover()
        seen["read"] = yield from client.query("t", "hot", "hot")
        seen["write"] = yield from client.insert(
            "t", make_entity("hot", "k2")
        )
        # The commit hook ledgered the write for the lag window.
        seen["at_risk"] = geo.writes_at_risk(env.now)

    env.process(scenario(env))
    env.run()
    assert seen["read"].key == ("hot", "hot")
    assert seen["write"].key == ("hot", "k2")
    # The route hint sent both calls to the promoted secondary directly:
    # no failover pass was ever needed, despite the dark primary.
    assert client.failovers == 0
    assert seen["at_risk"] == 1


def test_hedged_read_races_the_secondary_replica():
    env, geo = _geo()
    _fault_primary(env, geo, kind="latency_spike", magnitude=50.0)
    hedge = HedgePolicy(default_delay_s=0.05, warmup=1_000)
    client = geo.table_client(retry=NO_RETRY, hedge=hedge)
    entity = _run(env, client.query("t", "hot", "hot"))
    assert entity.key == ("hot", "hot")
    # The primary leg sat in the spike past the hedge delay; the backup
    # leg against the healthy secondary won the race.
    assert hedge.launched == 1
    assert hedge.wins == 1
    assert client.failovers == 0  # hedging is not failover


def test_pin_secondary_keeps_routing_there_after_a_failover():
    env = Environment()
    streams = RandomStreams(0)
    primary = StorageAccount(env, streams, name="acct-p")
    secondary = StorageAccount(env, streams, name="acct-s")
    for account in (primary, secondary):
        account.tables.create_table("t")
        account.tables.seed_entity("t", make_entity("hot", "hot"))
    server = primary.tables.server_for("t", "hot")
    injector = FaultInjector(env, RandomStreams(99).stream("faults"))
    injector.attach(server)
    injector.add_window(0.0, 50.0, "blackout")
    client = TableClient(
        primary.tables,
        retry=NO_RETRY,
        secondary=secondary.tables,
        failover=FailoverPolicy(pin_secondary_s=100.0),
    )
    pinned = {}

    def scenario(env):
        yield from client.query("t", "hot", "hot")  # fails over and pins
        pinned["after_first"] = (
            client.failovers, client._default_replica(),
        )
        yield from client.query("t", "hot", "hot")
        # Still one failover: the second call went straight to the
        # pinned secondary instead of re-failing on the dark primary.
        pinned["after_second"] = (
            client.failovers, client._default_replica(),
        )
        yield env.timeout(200.0)  # pin expired, primary repaired
        pinned["after_expiry"] = client._default_replica()
        yield from client.query("t", "hot", "hot")
        pinned["final_failovers"] = client.failovers

    env.process(scenario(env))
    env.run()
    assert pinned["after_first"] == (1, "secondary")
    assert pinned["after_second"] == (1, "secondary")
    assert pinned["after_expiry"] == "primary"
    assert pinned["final_failovers"] == 1


def test_failover_counts_in_measured_calls_too():
    env, geo = _geo()
    _fault_primary(env, geo)
    client = geo.table_client(retry=NO_RETRY)

    def scenario(env):
        result, outcome = yield from client.query_measured(
            "t", "hot", "hot"
        )
        assert outcome.ok
        assert result.key == ("hot", "hot")

    env.process(scenario(env))
    env.run()
    assert client.failovers == 1
