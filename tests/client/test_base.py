"""Unit tests for client plumbing: timeout racing, retries, measurement."""

import pytest

from repro.client import ClientTimeoutError, RetryPolicy, race_timeout
from repro.client.base import measured_call, with_retries
from repro.resilience.backoff import NO_RETRY
from repro.simcore import Environment
from repro.storage.errors import (
    EntityNotFoundError,
    OperationTimeoutError,
    ServerBusyError,
)


def _run(env, gen):
    box = {}

    def proc(env):
        try:
            box["result"] = yield from gen
        except Exception as exc:  # noqa: BLE001 - test harness
            box["error"] = exc

    env.process(proc(env))
    env.run()
    return box.get("result"), box.get("error")


def _slow_op(env, duration, value="done", error=None):
    yield env.timeout(duration)
    if error is not None:
        raise error
    return value


def test_race_timeout_returns_result_when_fast():
    env = Environment()

    def scenario(env):
        result = yield from race_timeout(env, _slow_op(env, 1.0), 5.0)
        return result, env.now

    (result, finished_at), err = _run(env, scenario(env))
    assert err is None and result == "done"
    assert finished_at == pytest.approx(1.0)  # not delayed by the timer


def test_race_timeout_raises_when_slow():
    env = Environment()

    def scenario(env):
        try:
            yield from race_timeout(env, _slow_op(env, 10.0), 2.0)
        except ClientTimeoutError:
            return env.now
        return None

    raised_at, err = _run(env, scenario(env))
    assert err is None
    assert raised_at == pytest.approx(2.0)


def test_race_timeout_none_means_no_timeout():
    env = Environment()
    result, err = _run(env, race_timeout(env, _slow_op(env, 100.0), None))
    assert err is None and result == "done"


def test_abandoned_operation_failure_does_not_crash_run():
    env = Environment()

    def failing_late(env):
        yield env.timeout(10.0)
        raise ServerBusyError("late failure nobody hears")

    _, err = _run(env, race_timeout(env, failing_late(env), 1.0))
    assert isinstance(err, ClientTimeoutError)
    env.run()  # the orphan fails at t=10 but is defused


def test_race_timeout_propagates_operation_error():
    env = Environment()
    _, err = _run(
        env,
        race_timeout(
            env, _slow_op(env, 1.0, error=EntityNotFoundError("x")), 5.0
        ),
    )
    assert isinstance(err, EntityNotFoundError)


def test_with_retries_retries_retryable_errors():
    env = Environment()
    attempts = {"n": 0}

    def flaky():
        attempts["n"] += 1
        yield env.timeout(0.1)
        if attempts["n"] < 3:
            raise ServerBusyError("busy")
        return "ok"

    policy = RetryPolicy(max_retries=3, backoff_s=1.0)
    result, err = _run(env, with_retries(env, flaky, policy, None))
    assert err is None and result == "ok"
    assert attempts["n"] == 3
    # Two backoffs: 1.0 + 2.0, plus three 0.1s attempts.
    assert env.now == pytest.approx(3.3)


def test_with_retries_gives_up_after_max():
    env = Environment()
    attempts = {"n": 0}

    def always_busy():
        attempts["n"] += 1
        yield env.timeout(0.1)
        raise ServerBusyError("busy")

    policy = RetryPolicy(max_retries=2, backoff_s=0.5)
    _, err = _run(env, with_retries(env, always_busy, policy, None))
    assert isinstance(err, ServerBusyError)
    assert attempts["n"] == 3  # initial + 2 retries


def test_with_retries_never_retries_semantic_errors():
    env = Environment()
    attempts = {"n": 0}

    def not_found():
        attempts["n"] += 1
        yield env.timeout(0.1)
        raise EntityNotFoundError("missing")

    policy = RetryPolicy(max_retries=5)
    _, err = _run(env, with_retries(env, not_found, policy, None))
    assert isinstance(err, EntityNotFoundError)
    assert attempts["n"] == 1


def test_no_retry_policy():
    assert not NO_RETRY.should_retry(ServerBusyError(), 0)


def test_retry_policy_classification():
    policy = RetryPolicy(max_retries=2)
    assert policy.should_retry(OperationTimeoutError(), 0)
    assert policy.should_retry(ServerBusyError(), 1)
    assert not policy.should_retry(ServerBusyError(), 2)
    assert not policy.should_retry(ValueError(), 0)
    assert policy.backoff(0) < policy.backoff(1)


def test_measured_call_records_latency_and_outcome():
    env = Environment()
    pair, err = _run(
        env,
        measured_call(env, lambda: _slow_op(env, 2.5), NO_RETRY, None),
    )
    assert err is None
    result, outcome = pair
    assert result == "done"
    assert outcome.ok
    assert outcome.latency_s == pytest.approx(2.5)
    assert outcome.retries == 0


def test_measured_call_captures_error_without_raising():
    env = Environment()
    pair, err = _run(
        env,
        measured_call(
            env,
            lambda: _slow_op(env, 1.0, error=EntityNotFoundError("x")),
            NO_RETRY, None,
        ),
    )
    assert err is None
    result, outcome = pair
    assert result is None
    assert not outcome.ok
    assert isinstance(outcome.error, EntityNotFoundError)


def test_measured_call_counts_retries():
    env = Environment()
    attempts = {"n": 0}

    def flaky():
        attempts["n"] += 1
        yield env.timeout(0.1)
        if attempts["n"] < 2:
            raise ServerBusyError("busy")
        return "ok"

    pair, _ = _run(
        env,
        measured_call(env, flaky, RetryPolicy(max_retries=3), None),
    )
    _result, outcome = pair
    assert outcome.retries == 1


class _KernelInterrupt(BaseException):
    """A control-flow exception that must never enter retry handling."""


class _RetryEverything:
    """A (mis)policy claiming every error, any number of times."""

    def should_retry(self, _error, _attempt):
        return True

    def backoff(self, _attempt):
        return 0.1


def test_with_retries_never_catches_base_exceptions():
    """Regression: the loop once caught BaseException, so a policy like
    this could swallow kernel control-flow exceptions and retry them."""
    env = Environment()
    attempts = {"n": 0}

    def interrupted():
        attempts["n"] += 1
        yield env.timeout(0.1)
        raise _KernelInterrupt()

    box = {}

    def proc(env):
        try:
            yield from with_retries(
                env, interrupted, _RetryEverything(), None
            )
        except BaseException as exc:  # noqa: BLE001 - the assertion
            box["error"] = exc

    env.process(proc(env))
    env.run()
    assert isinstance(box["error"], _KernelInterrupt)
    assert attempts["n"] == 1  # propagated on the first attempt


def test_with_retries_still_retries_plain_exceptions_with_such_policy():
    env = Environment()
    attempts = {"n": 0}

    def flaky():
        attempts["n"] += 1
        yield env.timeout(0.1)
        if attempts["n"] < 3:
            raise ValueError("transient")
        return "ok"

    result, err = _run(env, with_retries(env, flaky, _RetryEverything(), None))
    assert err is None and result == "ok"
    assert attempts["n"] == 3


def test_abandoned_operation_still_consumes_server_capacity():
    """The race_timeout orphan path: an abandoned request is not
    cancelled — it holds server capacity and completes server-side."""
    from repro.simcore import RandomStreams
    from repro.storage import TableService
    from repro.storage.table import make_entity

    env = Environment()
    svc = TableService(env, RandomStreams(0).stream("t"))
    svc.create_table("t")
    server = svc.server_for("t", "p")
    observed = {}

    def scenario(env):
        try:
            yield from race_timeout(
                env, svc.insert("t", make_entity("p", "r")), 0.001, "insert"
            )
        except ClientTimeoutError:
            observed["abandoned_at"] = env.now

    def watcher(env):
        # After the client walks away, the orphan still travels to the
        # server and occupies it; record the capacity it held.
        max_active = 0
        while svc.entity_count("t") == 0 and env.now < 5.0:
            if "abandoned_at" in observed:
                max_active = max(max_active, server.active_requests)
            yield env.timeout(0.0005)
        observed["max_active_while_orphaned"] = max_active

    env.process(scenario(env))
    env.process(watcher(env))
    env.run()  # drains the orphan: defuse() silences it, no crash
    assert observed["abandoned_at"] == pytest.approx(0.001)
    assert observed["max_active_while_orphaned"] >= 1
    assert server.active_requests == 0
    # The server finished the work nobody was waiting for.
    assert svc.entity_count("t") == 1


def test_abandoned_operation_failure_is_defused_not_raised():
    """If the orphan later fails, defuse() keeps the kernel quiet."""
    env = Environment()

    def fails_late(env):
        yield env.timeout(5.0)
        raise ServerBusyError("nobody is listening")

    _, err = _run(env, race_timeout(env, fails_late(env), 1.0))
    assert isinstance(err, ClientTimeoutError)
    env.run()  # the orphan fails at t=5.0; a crash here fails the test
    assert env.now == pytest.approx(5.0)
