"""The legacy ``repro.client.retry`` path must keep working, loudly."""

import importlib
import warnings


def test_shim_warns_on_import():
    import repro.client.retry as shim

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        importlib.reload(shim)
    assert any(
        issubclass(w.category, DeprecationWarning)
        and "repro.resilience.backoff" in str(w.message)
        for w in caught
    )


def test_shim_reexports_the_real_objects():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        from repro.client.retry import NO_RETRY, RetryPolicy

    from repro.resilience import backoff

    assert RetryPolicy is backoff.RetryPolicy
    assert NO_RETRY is backoff.NO_RETRY


def test_shim_policy_behaves():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        from repro.client.retry import NO_RETRY

    from repro.storage.errors import ServerBusyError

    assert not NO_RETRY.should_retry(ServerBusyError("busy"), attempt=0)
