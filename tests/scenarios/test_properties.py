"""Statistical properties of the scenario engine's random machinery.

Two families of checks:

* the Zipf partition router's empirical frequencies converge to its
  analytic pmf, and
* the arrival process's per-window counts (batched mode) and thinned
  arrival instants (exact mode) both match the closed-form integral of
  the modulated rate.

All draws use fixed seeds, so the tolerances are deterministic.
"""

import numpy as np
import pytest

from repro.scenarios import ArrivalProcess, ArrivalSpec, SkewSpec, ZipfRouter


# -- Zipf skew -------------------------------------------------------------


def test_zipf_pmf_is_normalized_and_ranked():
    router = ZipfRouter(SkewSpec(partitions=64, theta=0.99))
    pmf = router.pmf()
    assert pmf.sum() == pytest.approx(1.0)
    assert np.all(np.diff(pmf) < 0)  # hottest partition first
    assert router.top_share() == pytest.approx(pmf[0])
    assert 1.0 <= router.effective_partitions() <= 64.0


def test_zipf_theta_zero_is_uniform():
    router = ZipfRouter(SkewSpec(partitions=16, theta=0.0))
    assert np.allclose(router.pmf(), 1.0 / 16)
    assert router.effective_partitions() == pytest.approx(16.0)


def test_zipf_empirical_frequencies_match_pmf():
    spec = SkewSpec(partitions=64, theta=0.99)
    router = ZipfRouter(spec)
    rng = np.random.default_rng(7)
    n = 200_000
    parts = router.route_batch(rng.uniform(size=n))
    freq = np.bincount(parts, minlength=spec.partitions) / n
    # L1 distance between empirical frequencies and the analytic pmf;
    # E[L1] ~ sum_k sqrt(p_k/n) ~ 0.008 here, so 0.02 is ~2.5x slack.
    assert np.abs(freq - router.pmf()).sum() < 0.02
    # The head of the distribution is where the driver's hot-partition
    # behaviour comes from: check it tightly.
    assert freq[0] == pytest.approx(router.top_share(), abs=0.005)


def test_zipf_route_scalar_matches_batch():
    router = ZipfRouter(SkewSpec(partitions=8, theta=0.7))
    u = np.linspace(0.0, 0.999, 101)
    assert [router.route(v) for v in u] == list(router.route_batch(u))


# -- arrival processes -----------------------------------------------------


def _expected_vs_counts(spec, duration_s, window_s, n_clients, seed):
    rng = np.random.default_rng(seed)
    process = ArrivalProcess(spec, duration_s, rng=rng)
    wins, expected, counts = process.window_counts(
        window_s, n_clients, np.random.default_rng(seed + 1)
    )
    return process, wins, expected, counts


def test_poisson_diurnal_window_counts_match_rate_integral():
    spec = ArrivalSpec(
        kind="poisson", rate_hz=0.5,
        diurnal_amplitude=0.4, diurnal_period_s=600.0,
    )
    process, wins, expected, counts = _expected_vs_counts(
        spec, duration_s=600.0, window_s=60.0, n_clients=100, seed=11
    )
    assert len(wins) == 10
    # Per-window mean is the exact aggregate rate integral.
    for (t0, t1), mean in zip(wins, expected):
        assert mean == pytest.approx(100 * process.integral(t0, t1))
    # The diurnal modulation integrates to ~nothing over a full period.
    assert expected.sum() == pytest.approx(100 * 0.5 * 600.0, rel=1e-9)
    # Poisson draws agree with their means within 6 sigma per window.
    for mean, count in zip(expected, counts):
        assert abs(count - mean) < 6.0 * np.sqrt(mean)
    # Windows modulate: the diurnal peak is visibly above the trough.
    assert expected.max() > 1.3 * expected.min()


def test_diurnal_integral_matches_numeric_quadrature():
    spec = ArrivalSpec(
        kind="poisson", rate_hz=2.0,
        diurnal_amplitude=0.35, diurnal_period_s=251.0,
        diurnal_phase_s=17.0,
    )
    process = ArrivalProcess(spec, 300.0)
    t = np.linspace(40.0, 260.0, 200_001)
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    numeric = trapezoid([process.rate(v) for v in t], t)
    assert process.integral(40.0, 260.0) == pytest.approx(numeric, rel=1e-6)


def test_mmpp_segments_tile_horizon_and_match_burst_fraction():
    spec = ArrivalSpec(
        kind="mmpp", rate_hz=1.0,
        burst_multiplier=4.0, burst_fraction=0.2, burst_dwell_s=60.0,
    )
    duration = 200_000.0
    process = ArrivalProcess(spec, duration, rng=np.random.default_rng(5))
    # Segments tile [0, duration) contiguously.
    assert process.segments[0][0] == 0.0
    assert process.segments[-1][1] == duration
    for (_, prev_end, _), (start, _, _) in zip(
        process.segments, process.segments[1:]
    ):
        assert start == prev_end
    # Long-run burst occupancy converges to burst_fraction.
    high_time = sum(
        end - start for start, end, mult in process.segments if mult > 1.0
    )
    assert high_time / duration == pytest.approx(0.2, abs=0.03)
    # Integral additivity: window sums equal the full-horizon integral.
    windows = process.windows(1000.0)
    assert sum(
        process.integral(t0, t1) for t0, t1 in windows
    ) == pytest.approx(process.integral(0.0, duration))


def test_mmpp_window_counts_track_realized_bursts():
    spec = ArrivalSpec(
        kind="mmpp", rate_hz=0.5,
        burst_multiplier=5.0, burst_fraction=0.1, burst_dwell_s=120.0,
        diurnal_amplitude=0.25, diurnal_period_s=3600.0,
    )
    process, wins, expected, counts = _expected_vs_counts(
        spec, duration_s=3600.0, window_s=180.0, n_clients=500, seed=3
    )
    for mean, count in zip(expected, counts):
        assert abs(count - mean) < 6.0 * np.sqrt(mean)
    # The realized trajectory has bursty windows: expected rate is not
    # flat (some window sits well above the base-rate-only value).
    base_only = 500 * 0.5 * 180.0
    assert expected.max() > 1.5 * base_only
    # Totals agree with the exact integral over the horizon.
    assert expected.sum() == pytest.approx(
        500 * process.integral(0.0, 3600.0)
    )


def test_exact_thinned_arrivals_match_integral():
    spec = ArrivalSpec(
        kind="poisson", rate_hz=2.0,
        diurnal_amplitude=0.4, diurnal_period_s=500.0,
    )
    duration = 2000.0
    process = ArrivalProcess(spec, duration)
    rng = np.random.default_rng(23)
    t, n = 0.0, 0
    while True:
        t = process.next_arrival(t, rng)
        if t >= duration:
            break
        n += 1
    mean = process.integral(0.0, duration)
    assert abs(n - mean) < 6.0 * np.sqrt(mean)


def test_arrival_process_rejects_bad_inputs():
    closed = ArrivalSpec(kind="closed")
    with pytest.raises(ValueError):
        ArrivalProcess(closed, 100.0)
    poisson = ArrivalSpec(kind="poisson", rate_hz=1.0)
    with pytest.raises(ValueError):
        ArrivalProcess(poisson, 0.0)
    mmpp = ArrivalSpec(
        kind="mmpp", rate_hz=1.0, burst_fraction=0.2, burst_multiplier=2.0
    )
    with pytest.raises(ValueError):
        ArrivalProcess(mmpp, 100.0)  # needs an rng for the trajectory
