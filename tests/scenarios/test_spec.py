"""ScenarioSpec validation, (de)serialisation, loaders and registry."""

import json

import pytest

from repro.scenarios import (
    PACK_DIR,
    SCENARIO_OPS,
    ArrivalSpec,
    LinkSpec,
    OpSpec,
    PhaseSpec,
    ScenarioSpec,
    ScenarioValidationError,
    SkewSpec,
    dist_from_dict,
    dist_to_dict,
    get_scenario,
    list_scenarios,
    load_scenario_file,
    pack_files,
    register_scenario,
    scenario_from_dict,
    scenario_source,
    scenario_to_dict,
)
from repro.scenarios.loader import parse_toml, parse_toml_minimal
from repro.simcore import Distribution
from repro.workloads.cohort import SUPPORTED_OPS


def _mixed_spec(**overrides):
    base = dict(
        name="mixed",
        phases=(
            PhaseSpec(
                "main",
                (
                    OpSpec("table", "insert", weight=2.0,
                           size_kb=Distribution.constant(4.0)),
                    OpSpec("table", "query", weight=1.0),
                    OpSpec("queue", "add", weight=1.0,
                           size_kb=Distribution.uniform(0.5, 2.0)),
                ),
                ops_per_client=10,
            ),
        ),
        arrival=ArrivalSpec(
            kind="closed", think=Distribution.exponential(0.05)
        ),
        skew=SkewSpec(partitions=8, theta=0.9),
        n_clients=4,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


# -- op-set contract -------------------------------------------------------


def test_scenario_ops_match_cohort_supported_ops():
    # Every exact-mode op must also run batched: the spec layer and the
    # cohort layer must agree on the executable (service, op) pairs.
    assert set(SCENARIO_OPS) == SUPPORTED_OPS


# -- validation ------------------------------------------------------------


@pytest.mark.parametrize(
    "builder",
    [
        lambda: OpSpec("blob", "rename"),
        lambda: OpSpec("table", "insert", weight=0.0),
        lambda: OpSpec("table", "insert", retry="exponential"),
        lambda: PhaseSpec("main", ()),
        lambda: PhaseSpec("", (OpSpec("queue", "add"),)),
        lambda: PhaseSpec("main", (OpSpec("queue", "add"),), ops_per_client=0),
        lambda: ArrivalSpec(kind="batch"),
        lambda: ArrivalSpec(kind="poisson", rate_hz=0.0),
        lambda: ArrivalSpec(kind="mmpp", rate_hz=1.0, burst_fraction=0.0),
        lambda: ArrivalSpec(kind="mmpp", rate_hz=1.0, burst_fraction=0.2,
                            burst_multiplier=0.5),
        lambda: ArrivalSpec(kind="poisson", rate_hz=1.0,
                            diurnal_amplitude=1.0),
        lambda: SkewSpec(partitions=0),
        lambda: SkewSpec(theta=-0.1),
        lambda: LinkSpec(loss_rate=1.0),
        lambda: LinkSpec(bandwidth_mbps=0.0),
        lambda: LinkSpec(extra_latency_ms=-1.0),
    ],
)
def test_fragment_validation_errors(builder):
    with pytest.raises(ScenarioValidationError):
        builder()


def test_scenario_validation_errors():
    ops = (OpSpec("table", "insert"),)
    with pytest.raises(ScenarioValidationError):
        ScenarioSpec(name="", phases=(PhaseSpec("main", ops),))
    with pytest.raises(ScenarioValidationError):
        ScenarioSpec(name="x", phases=())
    with pytest.raises(ScenarioValidationError):
        ScenarioSpec(
            name="x",
            phases=(PhaseSpec("a", ops), PhaseSpec("a", ops)),
        )
    with pytest.raises(ScenarioValidationError):
        ScenarioSpec(name="x", phases=(PhaseSpec("main", ops),), n_clients=0)
    with pytest.raises(ScenarioValidationError):
        ScenarioSpec(name="x", phases=(PhaseSpec("main", ops),),
                     levels=(4, 0))
    # Open arrivals need a horizon and a single phase.
    with pytest.raises(ScenarioValidationError):
        ScenarioSpec(
            name="x", phases=(PhaseSpec("main", ops),),
            arrival=ArrivalSpec(kind="poisson", rate_hz=1.0),
        )
    with pytest.raises(ScenarioValidationError):
        ScenarioSpec(
            name="x",
            phases=(PhaseSpec("a", ops), PhaseSpec("b", ops)),
            arrival=ArrivalSpec(kind="poisson", rate_hz=1.0),
            duration_s=60.0,
        )


# -- derived quantities ----------------------------------------------------


def test_read_fraction_and_entity_size():
    spec = _mixed_spec()
    # insert w=2 (write), query w=1 (read), add w=1 (write).
    assert spec.read_fraction() == pytest.approx(0.25)
    # insert 4 kB (w=2), query default 1 kB (w=1), add mean 1.25 kB (w=1).
    assert spec.mean_entity_kb() == pytest.approx((2 * 4.0 + 1.0 + 1.25) / 4)
    assert spec.services == ("table", "queue")


def test_scaled_floors():
    closed = _mixed_spec()
    assert closed.scaled(0.01).phases[0].ops_per_client == 2
    assert closed.scaled(1.0) is closed
    open_spec = ScenarioSpec(
        name="open",
        phases=(PhaseSpec("main", (OpSpec("table", "query"),)),),
        arrival=ArrivalSpec(kind="poisson", rate_hz=1.0),
        duration_s=3600.0,
        window_s=60.0,
    )
    assert open_spec.scaled(0.001).duration_s == pytest.approx(240.0)
    with pytest.raises(ScenarioValidationError):
        open_spec.scaled(0.0)


# -- distribution round trips ----------------------------------------------


@pytest.mark.parametrize(
    "dist",
    [
        Distribution.constant(4.0),
        Distribution.uniform(0.5, 2.0),
        Distribution.exponential(0.1),
        Distribution.normal(5.0, 1.0, minimum=0.0),
        Distribution.lognormal_from_mean_std(16.0, 24.0),
        Distribution.pareto(1.0, 2.5),
        Distribution.empirical([0.35, 0.75, 1.25], [0.5, 0.3, 0.2]),
    ],
)
def test_distribution_dict_round_trip(dist):
    doc = dist_to_dict(dist)
    again = dist_to_dict(dist_from_dict(doc))
    assert again == doc
    assert dist_from_dict(doc).mean == pytest.approx(dist.mean)


def test_distribution_dict_errors():
    with pytest.raises(ScenarioValidationError):
        dist_from_dict({"kind": "cauchy"})
    with pytest.raises(ScenarioValidationError):
        dist_from_dict({"kind": "uniform", "low": 1.0})
    with pytest.raises(ScenarioValidationError):
        dist_from_dict("constant")


# -- scenario dict / file round trips --------------------------------------


def test_scenario_dict_round_trip_multi_phase():
    spec = _mixed_spec(
        phases=(
            PhaseSpec("warm", (OpSpec("table", "insert"),), ops_per_client=5),
            PhaseSpec(
                "main",
                (OpSpec("table", "query"), OpSpec("table", "update")),
                ops_per_client=20,
            ),
        ),
        link=LinkSpec(profile="dsl", extra_latency_ms=20.0, loss_rate=0.01),
        levels=(2, 4, 8),
        tags=("test",),
    )
    doc = scenario_to_dict(spec)
    assert scenario_to_dict(scenario_from_dict(doc)) == doc


@pytest.mark.parametrize("path", pack_files(), ids=lambda p: p.name)
def test_pack_files_parse_and_round_trip(path):
    spec, fmt = load_scenario_file(path)
    assert fmt == path.suffix.lstrip(".")
    doc = scenario_to_dict(spec)
    assert scenario_to_dict(scenario_from_dict(doc)) == doc
    # The shipped packs are the trace-shaped 10^4-client workloads.
    assert spec.n_clients >= 10_000
    assert spec.arrival.is_open
    assert not spec.abort_on_error


@pytest.mark.parametrize("path", pack_files(), ids=lambda p: p.name)
def test_minimal_toml_parser_matches_tomllib(path):
    tomllib = pytest.importorskip("tomllib")
    text = path.read_text()
    assert parse_toml_minimal(text) == tomllib.loads(text)
    assert parse_toml(text) == tomllib.loads(text)


def test_json_and_toml_specs_are_equivalent(tmp_path):
    toml_spec, _ = load_scenario_file(PACK_DIR / "block_storage.toml")
    json_path = tmp_path / "block_storage.json"
    json_path.write_text(json.dumps(scenario_to_dict(toml_spec)))
    json_spec, fmt = load_scenario_file(json_path)
    assert fmt == "json"
    assert scenario_to_dict(json_spec) == scenario_to_dict(toml_spec)


def test_load_scenario_file_reports_bad_config(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"scenario": {"name": "x"}}))
    with pytest.raises(ScenarioValidationError):
        load_scenario_file(bad)
    worse = tmp_path / "worse.json"
    worse.write_text(json.dumps({
        "scenario": {"name": "x", "n_clients": 2},
        "ops": [{"service": "blob", "op": "rename"}],
    }))
    with pytest.raises(ScenarioValidationError, match="worse.json"):
        load_scenario_file(worse)


# -- registry --------------------------------------------------------------


def test_registry_contents():
    names = list_scenarios()
    for expected in (
        "fig1-blob-download", "fig1-blob-upload", "fig2-table",
        "fig3-queue-add", "fig3-queue-peek", "fig3-queue-receive",
        "block-storage", "streaming",
    ):
        assert expected in names
    assert scenario_source("fig2-table") == "builtin"
    assert scenario_source("streaming").endswith("streaming.toml")


def test_registry_rejects_duplicates_and_unknown_names():
    with pytest.raises(ScenarioValidationError):
        get_scenario("no-such-scenario")
    with pytest.raises(ScenarioValidationError):
        register_scenario(get_scenario("fig2-table"))
    # Explicit replacement is allowed (idempotent re-registration).
    register_scenario(get_scenario("fig2-table"), replace=True)
