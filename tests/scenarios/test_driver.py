"""The unified scenario driver: exact mode, batched mode, packs, CLI."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.resilience.campaign import CAMPAIGN_SCENARIOS
from repro.scenarios import (
    EXACT_MAX_SCENARIO_CLIENTS,
    ArrivalSpec,
    LinkSpec,
    OpSpec,
    PhaseSpec,
    ScenarioSpec,
    SkewSpec,
    get_scenario,
    run_scenario,
    scenario_to_dict,
    sweep_scenario,
)
from repro.simcore import Distribution
from repro.workloads.cohort import CohortSpec

_TOOLS = Path(__file__).resolve().parents[2] / "tools"


def _load_schema_checker():
    spec = importlib.util.spec_from_file_location(
        "check_scenario_schema", _TOOLS / "check_scenario_schema.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _mixed_closed(**overrides):
    base = dict(
        name="mixed-closed",
        phases=(
            PhaseSpec(
                "main",
                (
                    OpSpec("table", "insert", weight=2.0,
                           size_kb=Distribution.constant(4.0)),
                    OpSpec("table", "query", weight=1.0),
                    OpSpec("queue", "add", weight=1.0),
                ),
                ops_per_client=10,
            ),
        ),
        arrival=ArrivalSpec(
            kind="closed", think=Distribution.exponential(0.02)
        ),
        skew=SkewSpec(partitions=8, theta=0.9),
        n_clients=4,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _blob_spec(link=None, abort=True, ops_per_client=3):
    return ScenarioSpec(
        name="blob-link",
        phases=(
            PhaseSpec(
                "main",
                (OpSpec("blob", "download",
                        size_mb=Distribution.constant(0.1)),),
                ops_per_client=ops_per_client,
            ),
        ),
        link=link,
        abort_on_error=abort,
        n_clients=3,
    )


# -- exact mode ------------------------------------------------------------


def test_mixed_closed_exact_run():
    run = run_scenario(_mixed_closed(), n_clients=4, seed=1, mode="exact")
    assert run.mode == "exact"
    assert run.ops_completed == 4 * 10
    assert run.errors == 0 and run.failed_clients == 0
    assert set(run.per_op) <= {"table.insert", "table.query", "queue.add"}
    assert sum(row["ops"] for row in run.per_op.values()) == 40
    assert run.makespan_s > 0
    assert run.latency_p50_s <= run.latency_p99_s
    # The skew block carries the analytic Zipf quantities.
    assert run.skew is not None
    assert run.skew["partitions"] == 8
    assert 1.0 <= run.skew["effective_partitions"] <= 8.0


def test_exact_mode_is_deterministic():
    a = run_scenario(_mixed_closed(), n_clients=4, seed=9, mode="exact")
    b = run_scenario(_mixed_closed(), n_clients=4, seed=9, mode="exact")
    assert a.summary() == b.summary()
    c = run_scenario(_mixed_closed(), n_clients=4, seed=10, mode="exact")
    assert c.summary() != a.summary()


def test_exact_mode_caps_population():
    with pytest.raises(ValueError):
        run_scenario(
            _mixed_closed(),
            n_clients=EXACT_MAX_SCENARIO_CLIENTS + 1,
            mode="exact",
        )


def test_auto_mode_dispatch():
    small = run_scenario(_mixed_closed(), n_clients=4, seed=0)
    assert small.mode == "exact"
    big = run_scenario(
        _mixed_closed(), n_clients=EXACT_MAX_SCENARIO_CLIENTS + 44, seed=0
    )
    assert big.mode == "batched"
    assert big.n_clients == EXACT_MAX_SCENARIO_CLIENTS + 44


def test_link_adds_latency_and_can_drop_requests():
    fast = run_scenario(_blob_spec(), seed=2, mode="exact")
    slow = run_scenario(
        _blob_spec(link=LinkSpec(profile="edge", extra_latency_ms=500.0)),
        seed=2,
        mode="exact",
    )
    # Exact mode keeps the tracer's service-side latency untouched; the
    # link delay shows up in the client-observed elapsed time (and so in
    # the makespan): 3 ops x 0.5 s extra per client here.
    assert slow.latency_mean_s == fast.latency_mean_s
    assert slow.makespan_s > fast.makespan_s + 3 * 0.45
    # A hopeless link (loss with no retransmit budget) drops requests;
    # with abort_on_error=False the run keeps going and counts them.
    lossy = run_scenario(
        _blob_spec(
            link=LinkSpec(profile="edge", loss_rate=0.6, max_retransmits=0),
            abort=False,
            ops_per_client=20,
        ),
        seed=2,
        mode="exact",
    )
    assert lossy.errors > 0
    assert lossy.ops_completed + lossy.errors == 3 * 20


# -- batched mode ----------------------------------------------------------


def test_batched_mode_is_deterministic():
    spec = get_scenario("block-storage").scaled(0.01)
    a = run_scenario(spec, seed=3, mode="batched")
    b = run_scenario(spec, seed=3, mode="batched")
    assert a.summary() == b.summary()


def test_closed_batched_splits_population_by_weight():
    spec = _mixed_closed(
        phases=(
            PhaseSpec(
                "main",
                (
                    OpSpec("table", "insert", weight=0.7,
                           size_kb=Distribution.constant(4.0)),
                    OpSpec("table", "query", weight=0.3),
                ),
                ops_per_client=10,
            ),
        ),
        arrival=ArrivalSpec(
            kind="closed", think=Distribution.exponential(1.0)
        ),
        skew=None,
    )
    run = run_scenario(spec, n_clients=2000, seed=3, mode="batched")
    assert run.mode == "batched"
    issued = {
        key: row["ops"] + row["errors"] for key, row in run.per_op.items()
    }
    total = sum(issued.values())
    assert total == 2000 * 10
    # Largest-remainder population split: op shares track the weights.
    assert issued["table.insert"] / total == pytest.approx(0.7, abs=0.01)
    assert issued["table.query"] / total == pytest.approx(0.3, abs=0.01)


@pytest.mark.parametrize("name", ["block-storage", "streaming"])
def test_pack_summary_passes_schema_check(name):
    checker = _load_schema_checker()
    run = run_scenario(get_scenario(name).scaled(0.01), mode="batched")
    doc = json.loads(json.dumps(run.summary()))
    checker.check_summary(doc)  # exits non-zero on any violation
    assert doc["n_clients"] >= 10_000
    assert doc["mode"] == "batched"
    assert doc["windows"]["count"] >= 4


def test_open_batched_windows_track_expected_load():
    run = run_scenario(get_scenario("streaming").scaled(0.01), mode="batched")
    w = run.summary()["windows"]
    issued = w["ops"] + w["errors"]
    # Poisson totals stay within ~5 sigma of the rate integral.
    assert abs(issued - w["expected_ops"]) < 5.0 * w["expected_ops"] ** 0.5


# -- sweeps ----------------------------------------------------------------

def test_sweep_scenario_is_jobs_invariant():
    spec = _mixed_closed()
    serial = sweep_scenario(spec, levels=[2, 3], seed=5, jobs=1)
    fanned = sweep_scenario(spec, levels=[2, 3], seed=5, jobs=2)
    assert sorted(serial) == [2, 3]
    for level in serial:
        assert serial[level].summary() == fanned[level].summary()
        assert serial[level].n_clients == level


# -- integration with cohort + campaign layers -----------------------------


def test_cohort_spec_from_scenario_folds_link_into_think():
    spec = _blob_spec(
        link=LinkSpec(
            profile="edge", extra_latency_ms=100.0, bandwidth_mbps=2.0,
            loss_rate=0.2, retransmit_penalty_ms=150.0,
        )
    )
    cohort = CohortSpec.from_scenario(spec, spec.all_ops[0], n_clients=100)
    assert (cohort.service, cohort.op) == ("blob", "download")
    assert cohort.n_clients == 100
    # extra 0.1s + 0.25 mean retransmits * 0.15s + 0.1MB / 2MBps = 0.1875s
    assert cohort.think_time is not None
    assert cohort.think_time.mean == pytest.approx(0.1875)


def test_campaign_spec_adopts_scenario_mix():
    campaign = CAMPAIGN_SCENARIOS["day"](seed=3, scale=1.0)
    block = get_scenario("block-storage")
    derived = campaign.with_scenario_mix(block)
    assert derived.read_fraction == pytest.approx(block.read_fraction())
    assert derived.entity_kb == pytest.approx(block.mean_entity_kb())
    assert derived.duration_s == campaign.duration_s


# -- CLI -------------------------------------------------------------------


def test_cli_scenario_list_and_describe(capsys):
    assert cli_main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    assert "block-storage" in out and "fig2-table" in out
    assert cli_main(["scenario", "describe", "streaming"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc == scenario_to_dict(get_scenario("streaming"))


def test_cli_scenario_run_writes_valid_summary(tmp_path, capsys):
    checker = _load_schema_checker()
    out = tmp_path / "summary.json"
    code = cli_main([
        "scenario", "run", "block-storage",
        "--scale", "0.01", "--json", str(out),
    ])
    assert code == 0
    doc = json.loads(out.read_text())
    checker.check_summary(doc)
    assert doc["scenario"] == "block-storage"


def test_cli_scenario_run_from_file_and_bad_name(tmp_path, capsys):
    spec_file = tmp_path / "tiny.json"
    spec_file.write_text(json.dumps(scenario_to_dict(_mixed_closed())))
    assert cli_main(["scenario", "run", "--file", str(spec_file)]) == 0
    assert cli_main(["scenario", "run", "no-such-scenario"]) == 2
    capsys.readouterr()
