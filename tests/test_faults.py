"""Tests for the fault-injection framework."""

import pytest

from repro.client import QueueClient, TableClient
from repro.resilience.backoff import NO_RETRY, RetryPolicy
from repro.faults import FaultInjector, FaultWindow
from repro.simcore import Environment, RandomStreams
from repro.storage import TableService
from repro.storage.errors import ConnectionFailureError, ServerBusyError
from repro.storage.table import make_entity


def _setup(seed=0):
    env = Environment()
    streams = RandomStreams(seed)
    svc = TableService(env, streams.stream("t"))
    svc.create_table("t")
    injector = FaultInjector(env, streams.stream("faults"))
    injector.attach(svc.server_for("t", "p"))
    return env, svc, injector


def _run(env, gen):
    box = {}

    def proc(env):
        try:
            box["result"] = yield from gen
        except Exception as exc:  # noqa: BLE001 - test harness
            box["error"] = exc

    env.process(proc(env))
    env.run()
    return box.get("result"), box.get("error")


def test_window_validation():
    with pytest.raises(ValueError):
        FaultWindow(0.0, 10.0, "meteor_strike")
    with pytest.raises(ValueError):
        FaultWindow(0.0, 0.0, "blackout")
    with pytest.raises(ValueError):
        FaultWindow(0.0, 1.0, "server_busy_storm", magnitude=1.5)
    with pytest.raises(ValueError):
        FaultWindow(0.0, 1.0, "latency_spike", magnitude=0.0)


def test_window_coverage():
    w = FaultWindow(10.0, 5.0, "blackout")
    assert not w.covers(9.9)
    assert w.covers(10.0)
    assert w.covers(14.9)
    assert not w.covers(15.0)


def test_no_faults_outside_windows():
    env, svc, injector = _setup()
    injector.add_window(1000.0, 10.0, "blackout")
    client = TableClient(svc, retry=NO_RETRY)
    _, err = _run(env, client.insert("t", make_entity("p", "r")))
    assert err is None
    assert injector.stats.blackout_failures == 0


def test_blackout_fails_everything():
    env, svc, injector = _setup()
    injector.add_window(0.0, 1e9, "blackout")
    client = TableClient(svc, retry=NO_RETRY)
    _, err = _run(env, client.insert("t", make_entity("p", "r")))
    assert isinstance(err, ConnectionFailureError)
    assert injector.stats.blackout_failures >= 1


def test_storm_rejections_absorbed_by_retries():
    env, svc, injector = _setup()
    injector.add_window(0.0, 1e9, "server_busy_storm", magnitude=0.4)
    client = TableClient(svc, retry=RetryPolicy(max_retries=8))
    errors = 0
    for i in range(30):
        _, err = _run(env, client.insert("t", make_entity("p", f"r{i}")))
        if err is not None:
            errors += 1
    # A 40% storm with 8 retries: essentially every op lands.
    assert errors == 0
    assert injector.stats.rejections > 0
    assert svc.entity_count("t") == 30


def test_storm_without_retries_surfaces_server_busy():
    env, svc, injector = _setup(seed=2)
    injector.add_window(0.0, 1e9, "server_busy_storm", magnitude=0.9)
    client = TableClient(svc, retry=NO_RETRY)
    failures = 0
    for i in range(20):
        _, err = _run(env, client.insert("t", make_entity("p", f"r{i}")))
        if isinstance(err, ServerBusyError):
            failures += 1
    assert failures >= 12  # ~90% of ops rejected


def test_latency_spike_stretches_operations():
    env, svc, injector = _setup()
    client = TableClient(svc, retry=NO_RETRY)
    t0 = env.now
    _run(env, client.query("t", "p", "nope"))  # miss; latency still paid
    baseline = env.now - t0

    injector.add_window(env.now, 1e9, "latency_spike", magnitude=2.0)
    t0 = env.now
    _run(env, client.query("t", "p", "nope"))
    spiked = env.now - t0
    assert injector.stats.delays_applied == 1
    assert injector.stats.extra_delay_s > 0
    # The measured stretch is the injected delay (modulo base jitter).
    extra = spiked - baseline
    assert extra == pytest.approx(
        injector.stats.extra_delay_s, abs=0.1 + baseline
    )


def test_double_attach_rejected():
    env, svc, injector = _setup()
    other = FaultInjector(env, RandomStreams(1).stream("f2"))
    with pytest.raises(ValueError):
        other.attach(svc.server_for("t", "p"))


def test_queue_drill_end_to_end():
    """A 503 storm on the queue: consumers retry and drain everything."""
    env = Environment()
    streams = RandomStreams(5)
    from repro.storage import QueueService

    qsvc = QueueService(env, streams.stream("q"))
    qsvc.create_queue("q")
    injector = FaultInjector(env, streams.stream("faults"))
    injector.attach(qsvc.server_for("q"))
    injector.add_window(0.0, 30.0, "server_busy_storm", magnitude=0.5)
    client = QueueClient(qsvc, retry=RetryPolicy(max_retries=10))
    drained = []

    def scenario(env):
        for i in range(10):
            yield from client.add("q", i)
        for _ in range(10):
            msg = yield from client.receive("q")
            yield from client.delete("q", msg, msg.pop_receipt)
            drained.append(msg.payload)

    env.process(scenario(env))
    env.run()
    assert sorted(drained) == list(range(10))
    assert injector.stats.rejections > 0


def test_crash_restart_fails_with_connection_error():
    env, svc, injector = _setup()
    window = injector.add_window(0.0, 1e9, "crash_restart")
    client = TableClient(svc, retry=NO_RETRY)
    _, err = _run(env, client.insert("t", make_entity("p", "r")))
    assert isinstance(err, ConnectionFailureError)
    # Counted separately from blackouts, so drills can tell server loss
    # from network loss.
    assert injector.stats.crash_failures == 1
    assert injector.stats.blackout_failures == 0
    assert injector.stats_for(window).crash_failures == 1


def test_error_burst_is_probabilistic_and_retryable():
    env, svc, injector = _setup(seed=4)
    injector.add_window(0.0, 1e9, "error_burst", magnitude=0.5)
    client = TableClient(svc, retry=RetryPolicy(max_retries=8))
    for i in range(20):
        _, err = _run(env, client.insert("t", make_entity("p", f"r{i}")))
        assert err is None  # retries absorb the burst
    assert injector.stats.error_failures > 0
    assert svc.entity_count("t") == 20


def test_error_burst_magnitude_is_validated():
    with pytest.raises(ValueError):
        FaultWindow(0.0, 1.0, "error_burst", magnitude=1.5)


def test_per_window_stats_attribution():
    """Non-overlapping windows: each decision lands on its own window."""
    env, svc, injector = _setup()
    crash = injector.add_window(0.0, 10.0, "crash_restart")
    blackout = injector.add_window(20.0, 10.0, "blackout")
    client = TableClient(svc, retry=NO_RETRY)

    def scenario(env):
        _, err1 = yield from client.insert_measured("t", make_entity("p", "a"))
        yield env.timeout(25.0 - env.now)
        _, err2 = yield from client.insert_measured("t", make_entity("p", "b"))
        return err1, err2

    env.process(scenario(env))
    env.run()
    assert injector.stats_for(crash).crash_failures == 1
    assert injector.stats_for(crash).blackout_failures == 0
    assert injector.stats_for(blackout).blackout_failures == 1
    assert injector.stats.crash_failures == 1
    assert injector.stats.blackout_failures == 1


def test_overlapping_windows_single_decision_in_schedule_order():
    """The earlier-starting window decides; the later one is not consulted,
    regardless of insertion order."""
    env, svc, injector = _setup()
    # Inserted out of order: the blackout starts later but is added first.
    blackout = injector.add_window(5.0, 100.0, "blackout")
    crash = injector.add_window(0.0, 100.0, "crash_restart")
    assert [w.kind for w in injector.active_windows(10.0)] == [
        "crash_restart", "blackout",
    ]
    client = TableClient(svc, retry=NO_RETRY)

    def scenario(env):
        yield env.timeout(10.0)  # both windows active
        yield from client.insert_measured("t", make_entity("p", "r"))

    env.process(scenario(env))
    env.run()
    assert injector.stats_for(crash).crash_failures == 1
    assert injector.stats_for(blackout).blackout_failures == 0


def test_overlapping_spike_then_storm_applies_only_the_delay():
    """A firing latency_spike ends the pass: the 100% storm behind it in
    the schedule never fires, and the op succeeds (slowly)."""
    env, svc, injector = _setup()
    injector.add_window(0.0, 1e9, "latency_spike", magnitude=0.5)
    injector.add_window(10.0, 1e9, "server_busy_storm", magnitude=1.0)
    client = TableClient(svc, retry=NO_RETRY)

    def scenario(env):
        yield env.timeout(20.0)  # both windows active
        result = yield from client.insert_measured("t", make_entity("p", "r"))
        return result

    env.process(scenario(env))
    env.run()
    assert injector.stats.delays_applied == 1
    assert injector.stats.rejections == 0
    assert svc.entity_count("t") == 1


def test_aggregate_stats_sum_window_stats():
    env, svc, injector = _setup(seed=9)
    first = injector.add_window(0.0, 1e9, "server_busy_storm", magnitude=1.0)
    second = injector.add_window(0.0, 1e9, "server_busy_storm", magnitude=1.0)
    client = TableClient(svc, retry=NO_RETRY)
    for i in range(5):
        _run(env, client.insert("t", make_entity("p", f"r{i}")))
    # All five rejections charged to the first window of the schedule.
    assert injector.stats_for(first).rejections == 5
    assert injector.stats_for(second).rejections == 0
    assert injector.stats.rejections == 5


# -- direct intercept-semantics tests (no client in the loop) ---------------

def _pass(injector, server):
    """Drive one admission pass of ``intercept`` directly; returns the
    raised fault error, or None for a clean (decision-free) pass."""
    gen = injector.intercept(server, None)
    try:
        next(gen)
    except StopIteration:
        return None
    except Exception as exc:  # noqa: BLE001 - test harness
        return exc
    raise AssertionError("intercept yielded a delay unexpectedly")


def test_intercept_direct_pass_charges_exactly_one_window():
    """Two identical overlapping blackouts: every pass raises once and
    charges exactly one window — always the first in schedule order."""
    env, svc, injector = _setup()
    server = svc.server_for("t", "p")
    first = injector.add_window(0.0, 100.0, "blackout")
    second = injector.add_window(0.0, 100.0, "blackout")
    for expected in (1, 2, 3):
        err = _pass(injector, server)
        assert isinstance(err, ConnectionFailureError)
        assert injector.stats_for(first).blackout_failures == expected
        assert injector.stats_for(second).blackout_failures == 0
        # The aggregate equals the pass count: one decision per pass.
        assert injector.stats.blackout_failures == expected


def test_intercept_same_start_resolves_by_insertion_order():
    """Equal start times fall back to insertion order, so the schedule
    is a total order and replays are deterministic."""
    env, svc, injector = _setup()
    server = svc.server_for("t", "p")
    crash = injector.add_window(0.0, 50.0, "crash_restart")
    blackout = injector.add_window(0.0, 50.0, "blackout")
    err = _pass(injector, server)
    assert isinstance(err, ConnectionFailureError)
    assert injector.stats_for(crash).crash_failures == 1
    assert injector.stats_for(blackout).blackout_failures == 0


def test_intercept_crash_and_blackout_attributed_separately():
    """crash_restart and blackout both surface as connection failures
    but are charged to distinct counters on distinct windows."""
    env, svc, injector = _setup()
    server = svc.server_for("t", "p")
    crash = injector.add_window(0.0, 10.0, "crash_restart")
    blackout = injector.add_window(20.0, 10.0, "blackout")
    assert isinstance(_pass(injector, server), ConnectionFailureError)
    env.run(until=25.0)  # queue is empty: the clock jumps to 25 s
    assert isinstance(_pass(injector, server), ConnectionFailureError)
    env.run(until=50.0)  # both windows have expired
    assert _pass(injector, server) is None
    assert injector.stats_for(crash).crash_failures == 1
    assert injector.stats_for(crash).blackout_failures == 0
    assert injector.stats_for(blackout).blackout_failures == 1
    assert injector.stats_for(blackout).crash_failures == 0
